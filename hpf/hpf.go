// Package hpf is the public API of the template-free HPF
// distribution-and-alignment model of Chapman, Mehrotra and Zima
// ("High Performance Fortran Without Templates", PPoPP 1993 / ICASE
// 93-17). It ties together:
//
//   - the mapping model (processor arrangements, distribution formats,
//     alignment functions, the alignment forest of primary and
//     secondary arrays),
//   - a directive-language front end so programs can be written in the
//     paper's own !HPF$ syntax,
//   - a simulated distributed-memory machine and an owner-computes
//     runtime that execute array statements and measure the
//     communication and load balance each mapping induces.
//
// # Quick start
//
//	prog, _ := hpf.NewProgram("demo", 16)
//	_ = prog.Exec(`
//	    PROCESSORS P(16)
//	    REAL A(1:256,1:256), B(1:256,1:256)
//	    !HPF$ DISTRIBUTE (BLOCK,:) :: A, B
//	`)
//	a, _ := prog.NewArray("A")
//	b, _ := prog.NewArray("B")
//	...
//
// See the examples/ directory for complete programs.
package hpf

import (
	"fmt"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/directive"
	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/inquiry"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
	"hpfnt/internal/template"
)

// Re-exported model types, so client code needs only this package.
type (
	// Domain is an n-dimensional index domain (§2.1).
	Domain = index.Domain
	// Triplet is a Fortran 90 subscript triplet L:U:S.
	Triplet = index.Triplet
	// Tuple is a single index.
	Tuple = index.Tuple
	// Format is a per-dimension distribution format (§4.1).
	Format = dist.Format
	// Target is a distribution target: a processor arrangement or a
	// section of one (§4).
	Target = proc.Target
	// Mapping is the element-based view of a data mapping.
	Mapping = core.ElementMapping
	// Report carries a simulated machine's counters and derived
	// metrics.
	Report = machine.Report
	// CostModel weights the machine's synthetic time estimate.
	CostModel = machine.CostModel
	// AlignSpec is a parsed ALIGN directive.
	AlignSpec = align.Spec
	// MappingInfo is an inquiry result (§8.2's inquiry functions).
	MappingInfo = inquiry.Info
	// DummyMode selects how a dummy argument's distribution is
	// specified (§7).
	DummyMode = core.DummyMode
	// DummySpec describes one dummy argument.
	DummySpec = core.DummySpec
	// Actual designates an actual argument (whole array or section).
	Actual = core.Actual
	// Frame is an active procedure call.
	Frame = core.Frame
)

// The distribution formats of §4.1.
var (
	// BLOCK is the HPF block format: q = ceil(N/NP) per block.
	BLOCK Format = dist.Block{}
	// BLOCKVienna is the Vienna Fortran balanced block variant
	// assumed in the footnote of §8.1.1.
	BLOCKVienna Format = dist.BlockVienna{}
	// COLON is the ":" format: the dimension is not distributed.
	COLON Format = dist.Collapsed{}
	// CYCLIC is CYCLIC(1).
	CYCLIC Format = dist.NewCyclic(1)
)

// CYCLICK returns the block-cyclic format CYCLIC(k).
func CYCLICK(k int) Format { return dist.NewCyclic(k) }

// GENERALBLOCK returns GENERAL_BLOCK with the given block upper
// bounds (§4.1.2).
func GENERALBLOCK(bounds ...int) Format { return dist.GeneralBlock{Bounds: bounds} }

// The §7 dummy argument modes.
const (
	Explicit     = core.DummyExplicit
	Inherit      = core.DummyInherit
	InheritMatch = core.DummyInheritMatch
	Implicit     = core.DummyImplicit
)

// DefaultCost returns the machine's default cost model (early-90s
// message-passing weights), for use with NewProgramCost and
// NewProgramEngine.
func DefaultCost() CostModel { return machine.DefaultCost() }

// TupleOf builds an index tuple.
func TupleOf(vals ...int) Tuple { return Tuple(vals) }

// Dim builds the standard (stride-1) triplet lo:hi.
func Dim(lo, hi int) Triplet { return index.Unit(lo, hi) }

// Span builds the triplet lo:hi:stride.
func Span(lo, hi, stride int) (Triplet, error) { return index.NewTriplet(lo, hi, stride) }

// Shape builds a standard domain from lo/hi pairs:
// Shape(0, n, 1, n) is [0:n, 1:n].
func Shape(bounds ...int) Domain { return index.Standard(bounds...) }

// Program is a complete template-free HPF program: a processor
// system, a main program unit with its alignment forest, a directive
// interpreter, and an execution backend (the sequential simulator or
// the parallel spmd engine — see SetDefaultEngine and
// NewProgramEngine).
type Program struct {
	// Unit is the main program unit.
	Unit *core.Unit
	// Machine is the backend's counter machine (the simulated
	// distributed-memory machine on the sim backend, the aggregated
	// per-worker counters on spmd).
	Machine *machine.Machine
	// Interp executes directive-language source against Unit.
	Interp *directive.Interp

	eng engine.Engine
	sys *proc.System
}

// SetDefaultEngine selects the execution backend ("sim" or "spmd")
// for subsequently created programs and workload sweeps. The initial
// default comes from the HPFNT_ENGINE environment variable (falling
// back to "sim").
func SetDefaultEngine(kind string) error { return engine.SetDefault(kind) }

// DefaultEngine reports the current default execution backend.
func DefaultEngine() string { return engine.Default }

// SetDefaultTransport selects the spmd backend's message transport
// ("inproc", "shm" or "tcp") for subsequently created programs and
// workload sweeps. The initial default comes from the HPFNT_TRANSPORT
// environment variable (falling back to "inproc"). The sim backend
// performs no communication and ignores the transport.
func SetDefaultTransport(kind string) error { return engine.SetDefaultTransport(kind) }

// DefaultTransport reports the current default spmd transport.
func DefaultTransport() string { return engine.DefaultTransport }

// NewProgram creates a program over np abstract processors with the
// default cost model, on the default execution backend.
func NewProgram(name string, np int) (*Program, error) {
	return NewProgramCost(name, np, machine.DefaultCost())
}

// NewProgramCost creates a program with an explicit machine cost
// model, on the default execution backend.
func NewProgramCost(name string, np int, cost machine.CostModel) (*Program, error) {
	return NewProgramEngine(name, engine.Default, np, cost)
}

// NewProgramEngine creates a program on an explicit execution
// backend ("sim" or "spmd"), on the default transport.
func NewProgramEngine(name, kind string, np int, cost machine.CostModel) (*Program, error) {
	return NewProgramTransport(name, kind, engine.DefaultTransport, np, cost)
}

// NewProgramTransport creates a program on an explicit execution
// backend and spmd message transport ("inproc", "shm" or "tcp"): the
// programmatic form of the HPFNT_ENGINE / HPFNT_TRANSPORT selection.
func NewProgramTransport(name, kind, transportKind string, np int, cost machine.CostModel) (*Program, error) {
	sys, err := proc.NewSystem(np)
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewOn(kind, transportKind, np, cost)
	if err != nil {
		return nil, err
	}
	unit := core.NewUnit(name, sys)
	return &Program{
		Unit:    unit,
		Machine: eng.Machine(),
		Interp:  directive.New(unit),
		eng:     eng,
		sys:     sys,
	}, nil
}

// NewProgramOn creates a program over an existing execution engine —
// typically a multi-process spmd engine built with engine.NewSPMDOn
// over a joined transport (cmd/hpfrun's -spawn mode). The program
// takes ownership of the engine: Close closes it.
func NewProgramOn(name string, eng engine.Engine) (*Program, error) {
	sys, err := proc.NewSystem(eng.NP())
	if err != nil {
		return nil, err
	}
	unit := core.NewUnit(name, sys)
	return &Program{
		Unit:    unit,
		Machine: eng.Machine(),
		Interp:  directive.New(unit),
		eng:     eng,
		sys:     sys,
	}, nil
}

// Engines lists the available execution backends.
func Engines() []string { return engine.Kinds() }

// Transports lists the available spmd message transports.
func Transports() []string { return engine.Transports() }

// EngineKind reports the program's execution backend.
func (p *Program) EngineKind() string { return p.eng.Kind() }

// Close releases the backend's resources (the spmd engine's worker
// goroutines). Programs dropped without Close are cleaned up by a
// finalizer; Close is for deterministic shutdown.
func (p *Program) Close() error { return p.eng.Close() }

// EnableTemplates attaches the HPF baseline template model (package
// template), enabling TEMPLATE directives for comparison experiments.
func (p *Program) EnableTemplates() *template.Model {
	tm := template.NewModel(p.sys)
	p.Interp.AttachTemplates(tm)
	return tm
}

// UseViennaBlock makes BLOCK directives use the Vienna Fortran
// balanced-block definition (footnote, §8.1.1).
func (p *Program) UseViennaBlock(on bool) { p.Interp.ViennaBlock = on }

// SetParam supplies an integer parameter / READ input value to the
// directive interpreter.
func (p *Program) SetParam(name string, v int) { p.Interp.SetParam(name, v) }

// SetParamArray supplies a named integer array (e.g. a GENERAL_BLOCK
// bound vector).
func (p *Program) SetParamArray(name string, vals []int) { p.Interp.SetParamArray(name, vals) }

// Exec runs directive-language source (declarations, directives and
// executable statements) against the program.
func (p *Program) Exec(src string) error { return p.Interp.ExecProgram(src) }

// Processors declares a processor array arrangement programmatically.
func (p *Program) Processors(name string, dom Domain) (Target, error) {
	a, err := p.sys.DeclareArray(name, dom)
	if err != nil {
		return Target{}, err
	}
	return proc.Whole(a), nil
}

// TargetOf returns a whole-arrangement target by name.
func (p *Program) TargetOf(name string) (Target, error) {
	a, ok := p.sys.Lookup(name)
	if !ok {
		return Target{}, fmt.Errorf("hpf: unknown processor arrangement %s", name)
	}
	return proc.Whole(a), nil
}

// SectionTarget returns a processor-section target, e.g.
// SectionTarget("Q", Span(1, 8, 2)).
func (p *Program) SectionTarget(name string, sel ...Triplet) (Target, error) {
	a, ok := p.sys.Lookup(name)
	if !ok {
		return Target{}, fmt.Errorf("hpf: unknown processor arrangement %s", name)
	}
	return proc.SectionOf(a, sel...)
}

// Declare declares a static array programmatically.
func (p *Program) Declare(name string, dom Domain) error {
	_, err := p.Unit.DeclareArray(name, dom)
	return err
}

// Distribute applies a DISTRIBUTE programmatically.
func (p *Program) Distribute(name string, formats []Format, target Target) error {
	return p.Unit.Distribute(name, formats, target)
}

// Align applies an ALIGN programmatically.
func (p *Program) Align(spec AlignSpec) error { return p.Unit.Align(spec) }

// MappingOf returns an array's element mapping (through the template
// model for template-aligned arrays when templates are enabled).
func (p *Program) MappingOf(name string) (Mapping, error) { return p.Interp.MappingOf(name) }

// Inquire runs the inquiry functions on an array's mapping (§8.2).
func (p *Program) Inquire(name string) (MappingInfo, error) {
	m, err := p.MappingOf(name)
	if err != nil {
		return MappingInfo{}, err
	}
	return inquiry.Describe(m), nil
}

// NewArray materializes a distributed runtime array for a declared
// array, on the program's execution backend.
func (p *Program) NewArray(name string) (*DistArray, error) {
	m, err := p.MappingOf(name)
	if err != nil {
		return nil, err
	}
	a, err := p.eng.NewArray(name, m)
	if err != nil {
		return nil, err
	}
	return &DistArray{arr: a, prog: p}, nil
}

// Call enters a procedure (§7).
func (p *Program) Call(procName string, dummies []DummySpec, actuals []Actual) (*Frame, error) {
	return p.Unit.Call(procName, dummies, actuals)
}

// Stats snapshots the machine counters.
func (p *Program) Stats() Report { return p.eng.Stats() }

// ResetStats clears the machine counters.
func (p *Program) ResetStats() { p.eng.Reset() }

// DistArray is a distributed array bound to its program's execution
// backend.
type DistArray struct {
	arr  engine.Array
	prog *Program
}

// Name returns the array's name.
func (a *DistArray) Name() string { return a.arr.Name() }

// Fill initializes every element from fn. fn must be pure: the spmd
// backend evaluates it concurrently, once per replica.
func (a *DistArray) Fill(fn func(Tuple) float64) { a.arr.Fill(fn) }

// At reads the element at tuple t.
func (a *DistArray) At(t Tuple) float64 { return a.arr.At(t) }

// Set writes the element at tuple t.
func (a *DistArray) Set(t Tuple, v float64) { a.arr.Set(t, v) }

// Data exposes the dense column-major global values, for
// verification.
func (a *DistArray) Data() []float64 { return a.arr.Data() }

// Mapping returns the array's element mapping.
func (a *DistArray) Mapping() Mapping { return a.arr.Mapping() }

// Replicated reports whether any element has more than one owner.
func (a *DistArray) Replicated() bool { return a.arr.Replicated() }

// Assign executes lhs(t) = Σ coeff·src(t+shift) over region under the
// owner-computes rule, charging the program's machine.
func (a *DistArray) Assign(region Domain, terms ...AssignTerm) error {
	return a.arr.Assign(region, a.prog.terms(terms))
}

// terms converts facade terms to backend terms.
func (p *Program) terms(terms []AssignTerm) []engine.Term {
	rts := make([]engine.Term, len(terms))
	for i, t := range terms {
		rts[i] = engine.Term{Src: t.Src.arr, Shift: t.Shift, Coeff: t.Coeff}
	}
	return rts
}

// Remap moves the array to the mapping currently recorded for it in
// the program (after a REDISTRIBUTE/REALIGN directive), returning the
// number of elements moved.
func (a *DistArray) Remap() (int, error) {
	m, err := a.prog.MappingOf(a.Name())
	if err != nil {
		return 0, err
	}
	return a.arr.Remap(m)
}

// RemapTo moves the array to an explicit mapping.
func (a *DistArray) RemapTo(m Mapping) (int, error) {
	return a.arr.Remap(m)
}

// Shape returns the array's index domain.
func (a *DistArray) Shape() Domain { return a.arr.Domain() }

// AssignTerm is one right-hand-side reference of Assign.
type AssignTerm struct {
	Src   *DistArray
	Coeff float64
	Shift []int
}

// Read builds a term Coeff·Src(t+Shift).
func Read(src *DistArray, coeff float64, shift ...int) AssignTerm {
	return AssignTerm{Src: src, Coeff: coeff, Shift: shift}
}

// ReduceOp selects a reduction operator for DistArray.Reduce.
type ReduceOp = runtime.ReduceOp

// The reduction operators.
const (
	Sum = runtime.ReduceSum
	Max = runtime.ReduceMax
	Min = runtime.ReduceMin
)

// Reduce computes a global reduction of the array, charging the
// standard tree-combine communication to the program's machine.
func (a *DistArray) Reduce(op ReduceOp) (float64, error) {
	return a.arr.Reduce(op)
}

// Schedule is a reusable communication schedule for an iterated
// stencil statement (overlap / ghost-region exchange). Build it once
// with NewSchedule, then Run it each iteration.
type Schedule struct {
	s engine.Schedule
}

// NewSchedule precomputes the communication schedule of
// lhs(region) = Σ terms. Rebuild after any remapping of the involved
// arrays.
func (a *DistArray) NewSchedule(region Domain, terms ...AssignTerm) (*Schedule, error) {
	s, err := a.arr.NewSchedule(region, a.prog.terms(terms))
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// Run replays the exchange and computes the statement once.
func (s *Schedule) Run() error { return s.s.Execute() }

// RunN replays the statement iters times (a single engine epoch on
// the spmd backend).
func (s *Schedule) RunN(iters int) error { return s.s.ExecuteN(iters) }

// GhostElements reports the per-iteration overlap traffic.
func (s *Schedule) GhostElements() int { return s.s.GhostElements() }

// Messages reports the aggregated messages per execution.
func (s *Schedule) Messages() int { return s.s.Messages() }

// INDIRECT returns a user-defined (indirect) distribution format from
// a 1-based owner vector (one entry per index). It errors on invalid
// owner entries.
func INDIRECT(owner []int) (Format, error) { return dist.NewIndirect(owner) }

// irregularPattern converts rank-1 global-index access lists to the
// inspector's offset form, validating ranks and index bounds.
func irregularPattern(lhs, src *DistArray, writes, reads []int, coeffs []float64) (inspector.Pattern, error) {
	ldom, sdom := lhs.arr.Domain(), src.arr.Domain()
	if ldom.Rank() != 1 || sdom.Rank() != 1 {
		return inspector.Pattern{}, fmt.Errorf("hpf: irregular schedules take rank-1 arrays (have %s rank %d, %s rank %d)",
			lhs.Name(), ldom.Rank(), src.Name(), sdom.Rank())
	}
	if len(writes) != len(reads) {
		return inspector.Pattern{}, fmt.Errorf("hpf: %d writes vs %d reads", len(writes), len(reads))
	}
	if coeffs != nil && len(coeffs) != len(writes) {
		return inspector.Pattern{}, fmt.Errorf("hpf: %d coefficients for %d accesses", len(coeffs), len(writes))
	}
	lt, st := ldom.Dims[0], sdom.Dims[0]
	pat := inspector.Pattern{
		Writes: make([]int32, len(writes)),
		Reads:  make([]int32, len(reads)),
		Coeffs: coeffs,
	}
	for k, w := range writes {
		if w < lt.Low || w > lt.High {
			return inspector.Pattern{}, fmt.Errorf("hpf: access %d writes %s(%d) outside %s", k, lhs.Name(), w, ldom)
		}
		pat.Writes[k] = int32(w - lt.Low)
	}
	for k, r := range reads {
		if r < st.Low || r > st.High {
			return inspector.Pattern{}, fmt.Errorf("hpf: access %d reads %s(%d) outside %s", k, src.Name(), r, sdom)
		}
		pat.Reads[k] = int32(r - st.Low)
	}
	return pat, nil
}

// NewIrregular compiles the subscripted (indirection-array) statement
//
//	lhs(writes[k]) = Σ_k coeffs[k] · src(reads[k])
//
// into a reusable inspector–executor schedule: the inspector runs
// once — partitioning the accesses by owner, deduplicating remote
// reads, and aggregating the halo exchange into one message per
// processor pair — and every Run/RunN replays the compiled exchange
// with no per-iteration analysis. This is the communication pattern
// of INDIRECT-distributed data and subscripted accesses like
// X(COL(k)), whose communication sets cannot be derived in closed
// form (§9). writes and reads are global indices of the rank-1 lhs
// and src arrays; a nil coeffs means all 1. Elements of lhs never
// written keep their values; elements written more than once receive
// the sum of their accesses. Rebuild after any remapping of either
// array; replicated arrays are refused.
func (a *DistArray) NewIrregular(src *DistArray, writes, reads []int, coeffs []float64) (*Schedule, error) {
	pat, err := irregularPattern(a, src, writes, reads, coeffs)
	if err != nil {
		return nil, err
	}
	s, err := a.arr.NewIrregular(src.arr, pat)
	if err != nil {
		return nil, err
	}
	return &Schedule{s: s}, nil
}

// Gather executes lhs(i) = src(idx(i)) once: one indirection entry
// per element of the rank-1 lhs, in index order. It is the A = B(V)
// form of subscripted assignment; for iterated gathers build the
// schedule once with NewIrregular and RunN it.
func (a *DistArray) Gather(src *DistArray, idx []int) error {
	dom := a.arr.Domain()
	if dom.Rank() != 1 {
		return fmt.Errorf("hpf: Gather takes a rank-1 lhs (have %s rank %d)", a.Name(), dom.Rank())
	}
	if len(idx) != dom.Size() {
		return fmt.Errorf("hpf: Gather over %s needs %d indices, got %d", a.Name(), dom.Size(), len(idx))
	}
	writes := make([]int, len(idx))
	for i := range writes {
		writes[i] = dom.Dims[0].Low + i
	}
	s, err := a.NewIrregular(src, writes, idx, nil)
	if err != nil {
		return err
	}
	return s.Run()
}

// Scatter executes lhs(idx(i)) = src(i) once: one indirection entry
// per element of the rank-1 src, in index order — the A(V) = B form.
// Duplicate indices accumulate (scatter-add); lhs elements not named
// in idx keep their values.
func (a *DistArray) Scatter(src *DistArray, idx []int) error {
	dom := src.arr.Domain()
	if dom.Rank() != 1 {
		return fmt.Errorf("hpf: Scatter takes a rank-1 src (have %s rank %d)", src.Name(), dom.Rank())
	}
	if len(idx) != dom.Size() {
		return fmt.Errorf("hpf: Scatter from %s needs %d indices, got %d", src.Name(), dom.Size(), len(idx))
	}
	reads := make([]int, len(idx))
	for i := range reads {
		reads[i] = dom.Dims[0].Low + i
	}
	s, err := a.NewIrregular(src, idx, reads, nil)
	if err != nil {
		return err
	}
	return s.Run()
}

// MixedTerm is a right-hand-side reference with an arbitrary
// (possibly rank-changing) index mapping, e.g. the A(i) in
// E(i,j) = D(i,j) + A(i).
type MixedTerm struct {
	Src   *DistArray
	Coeff float64
	Map   func(Tuple) Tuple
}

// AssignMixed executes lhs(t) = Σ coeff·src(map(t)) over region under
// the owner-computes rule.
func (a *DistArray) AssignMixed(region Domain, terms []MixedTerm) error {
	rts := make([]engine.GeneralTerm, len(terms))
	for i, t := range terms {
		rts[i] = engine.GeneralTerm{Src: t.Src.arr, Coeff: t.Coeff, Map: t.Map}
	}
	return a.arr.AssignGeneral(region, rts)
}
