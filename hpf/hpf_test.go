package hpf

import (
	"strings"
	"testing"
)

func newProg(t *testing.T, np int) *Program {
	t.Helper()
	p, err := NewProgram("test", np)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQuickstartFlow(t *testing.T) {
	prog := newProg(t, 8)
	prog.SetParam("N", 32)
	err := prog.Exec(`
		PROCESSORS P(8)
		REAL A(1:N,1:N), B(1:N,1:N)
		!HPF$ DISTRIBUTE (BLOCK,:) TO P :: A, B
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.NewArray("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.NewArray("B")
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu Tuple) float64 { return float64(tu[0]) })
	interior := Shape(2, 31, 2, 31)
	err = b.Assign(interior,
		Read(a, 0.25, -1, 0), Read(a, 0.25, 1, 0),
		Read(a, 0.25, 0, -1), Read(a, 0.25, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Laplacian of f(i)=i is i again.
	if got := b.At(TupleOf(10, 10)); got != 10 {
		t.Fatalf("B(10,10) = %f", got)
	}
	r := prog.Stats()
	if r.RemoteRefs == 0 || r.Messages == 0 {
		t.Fatalf("expected boundary communication, got %+v", r)
	}
}

func TestProgrammaticAPI(t *testing.T) {
	prog := newProg(t, 4)
	tg, err := prog.Processors("P", Shape(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Declare("A", Shape(1, 16)); err != nil {
		t.Fatal(err)
	}
	if err := prog.Distribute("A", []Format{BLOCK}, tg); err != nil {
		t.Fatal(err)
	}
	info, err := prog.Inquire("A")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Direct || info.NP != 4 {
		t.Fatalf("info = %+v", info)
	}
	tg2, err := prog.TargetOf("P")
	if err != nil || !tg2.Equal(tg) {
		t.Fatalf("TargetOf: %v", err)
	}
	if _, err := prog.TargetOf("NOPE"); err == nil {
		t.Fatal("unknown arrangement must fail")
	}
}

func TestSectionTargetAPI(t *testing.T) {
	prog := newProg(t, 8)
	if _, err := prog.Processors("Q", Shape(1, 8)); err != nil {
		t.Fatal(err)
	}
	sp, err := Span(1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := prog.SectionTarget("Q", sp)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NP() != 4 {
		t.Fatalf("NP = %d", tg.NP())
	}
	if _, err := prog.SectionTarget("NOPE", sp); err == nil {
		t.Fatal("unknown arrangement must fail")
	}
}

func TestRemapAfterRedistribute(t *testing.T) {
	prog := newProg(t, 4)
	err := prog.Exec(`
		PROCESSORS P(4)
		REAL A(16)
		!HPF$ DYNAMIC A
		!HPF$ DISTRIBUTE A(BLOCK) TO P
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.NewArray("A")
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu Tuple) float64 { return float64(tu[0] * 10) })
	if err := prog.Exec("!HPF$ REDISTRIBUTE A(CYCLIC) TO P"); err != nil {
		t.Fatal(err)
	}
	moved, err := a.Remap()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("remap must move elements")
	}
	if a.At(TupleOf(7)) != 70 {
		t.Fatal("values must survive remap")
	}
	r := prog.Stats()
	if r.ElementsMoved != int64(moved) {
		t.Fatalf("machine recorded %d, remap reported %d", r.ElementsMoved, moved)
	}
	prog.ResetStats()
	if prog.Stats().ElementsMoved != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestAssignMixed(t *testing.T) {
	prog := newProg(t, 4)
	err := prog.Exec(`
		PROCESSORS P(4)
		REAL D(8,4), E(8,4), A(8)
		!HPF$ DISTRIBUTE (BLOCK,:) TO P :: D, E
		!HPF$ ALIGN A(:) WITH D(:,*)
	`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := prog.NewArray("D")
	e, _ := prog.NewArray("E")
	a, err := prog.NewArray("A")
	if err != nil {
		t.Fatal(err)
	}
	d.Fill(func(tu Tuple) float64 { return float64(tu[0] + tu[1]) })
	a.Fill(func(tu Tuple) float64 { return float64(100 * tu[0]) })
	err = e.AssignMixed(e.Shape(), []MixedTerm{
		{Src: d, Coeff: 1, Map: func(tu Tuple) Tuple { return tu }},
		{Src: a, Coeff: 1, Map: func(tu Tuple) Tuple { return TupleOf(tu[0]) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.At(TupleOf(3, 2)); got != 3+2+300 {
		t.Fatalf("E(3,2) = %f", got)
	}
}

func TestCallThroughFacade(t *testing.T) {
	prog := newProg(t, 8)
	err := prog.Exec(`
		PROCESSORS P(8)
		REAL A(100)
		!HPF$ DISTRIBUTE A(CYCLIC) TO P
	`)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := prog.Call("SUB", []DummySpec{{Name: "X", Mode: Inherit}}, []Actual{{Name: "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Bindings[0].RemapIn != 0 {
		t.Fatal("inherit must be free")
	}
	if err := fr.Return(); err != nil {
		t.Fatal(err)
	}
}

func TestEnableTemplatesAndViennaToggle(t *testing.T) {
	prog := newProg(t, 4)
	prog.EnableTemplates()
	prog.UseViennaBlock(true)
	err := prog.Exec(`
		PROCESSORS P(4)
		REAL A(9)
		!HPF$ TEMPLATE T(9)
		!HPF$ ALIGN A(I) WITH T(I)
		!HPF$ DISTRIBUTE T(BLOCK) TO P
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.MappingOf("A")
	if err != nil {
		t.Fatal(err)
	}
	os, err := m.Owners(TupleOf(9))
	if err != nil {
		t.Fatal(err)
	}
	if os[0] != 4 {
		t.Fatalf("A(9) on %v", os)
	}
	if !strings.Contains(m.Describe(), "template") {
		t.Fatalf("Describe = %q", m.Describe())
	}
}

func TestFormatConstructors(t *testing.T) {
	if CYCLICK(3).String() != "CYCLIC(3)" {
		t.Fatal("CYCLICK wrong")
	}
	if GENERALBLOCK(4, 8).String() != "GENERAL_BLOCK(/4,8/)" {
		t.Fatal("GENERALBLOCK wrong")
	}
	if BLOCK.String() != "BLOCK" || COLON.String() != ":" || CYCLIC.String() != "CYCLIC" {
		t.Fatal("format constants wrong")
	}
	if BLOCKVienna.Kind().String() != "BLOCK" {
		t.Fatal("Vienna block kind wrong")
	}
}

func TestDimSpanShape(t *testing.T) {
	d := Dim(2, 6)
	if d.Count() != 5 {
		t.Fatalf("Dim count = %d", d.Count())
	}
	if _, err := Span(1, 10, 0); err == nil {
		t.Fatal("zero stride must fail")
	}
	sh := Shape(0, 4, 1, 3)
	if sh.Rank() != 2 || sh.Size() != 15 {
		t.Fatalf("Shape = %v", sh)
	}
}

func TestNewProgramValidation(t *testing.T) {
	if _, err := NewProgram("x", 0); err == nil {
		t.Fatal("np=0 must fail")
	}
}

func TestReduceThroughFacade(t *testing.T) {
	prog := newProg(t, 4)
	err := prog.Exec(`
		PROCESSORS P(4)
		REAL A(100)
		!HPF$ DISTRIBUTE A(BLOCK) TO P
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.NewArray("A")
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu Tuple) float64 { return float64(tu[0]) })
	sum, err := a.Reduce(Sum)
	if err != nil || sum != 5050 {
		t.Fatalf("sum = %f, %v", sum, err)
	}
	max, err := a.Reduce(Max)
	if err != nil || max != 100 {
		t.Fatalf("max = %f, %v", max, err)
	}
	if prog.Stats().Messages == 0 {
		t.Fatal("reduction must record combine messages")
	}
}

func TestScheduleThroughFacade(t *testing.T) {
	prog := newProg(t, 4)
	prog.SetParam("N", 32)
	err := prog.Exec(`
		PROCESSORS P(4)
		REAL A(1:N,1:N), B(1:N,1:N)
		!HPF$ DISTRIBUTE (BLOCK,:) TO P :: A, B
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := prog.NewArray("A")
	b, err := prog.NewArray("B")
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu Tuple) float64 { return float64(tu[0]) })
	sched, err := b.NewSchedule(Shape(2, 31, 2, 31),
		Read(a, 0.25, -1, 0), Read(a, 0.25, 1, 0),
		Read(a, 0.25, 0, -1), Read(a, 0.25, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sched.GhostElements() == 0 {
		t.Fatal("expected boundary ghost elements")
	}
	for i := 0; i < 3; i++ {
		if err := sched.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.At(TupleOf(10, 10)); got != 10 {
		t.Fatalf("B(10,10) = %f", got)
	}
	r := prog.Stats()
	if r.ElementsMoved != int64(3*sched.GhostElements()) {
		t.Fatalf("moved %d, want 3x%d", r.ElementsMoved, sched.GhostElements())
	}
}

func TestIndirectThroughFacade(t *testing.T) {
	f, err := INDIRECT([]int{1, 2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	prog := newProg(t, 2)
	tg, err := prog.Processors("P", Shape(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Declare("A", Shape(1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := prog.Distribute("A", []Format{f}, tg); err != nil {
		t.Fatal(err)
	}
	m, _ := prog.MappingOf("A")
	os, err := m.Owners(TupleOf(3))
	if err != nil || os[0] != 1 {
		t.Fatalf("A(3) on %v, %v", os, err)
	}
	if _, err := INDIRECT([]int{0}); err == nil {
		t.Fatal("invalid owner vector must fail")
	}
}

// runJacobiProgram is TestQuickstartFlow's core, parameterized by
// backend, returning the computed checksum and the machine report.
func runJacobiProgram(t *testing.T, kind string) (float64, Report) {
	t.Helper()
	prog, err := NewProgramEngine("both", kind, 8, DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer prog.Close()
	prog.SetParam("N", 32)
	err = prog.Exec(`
		PROCESSORS P(8)
		REAL A(1:N,1:N), B(1:N,1:N)
		!HPF$ DISTRIBUTE (BLOCK,:) TO P :: A, B
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.NewArray("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.NewArray("B")
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu Tuple) float64 { return float64(tu[0]*3 + tu[1]) })
	sched, err := b.NewSchedule(Shape(2, 31, 2, 31),
		Read(a, 0.25, -1, 0), Read(a, 0.25, 1, 0),
		Read(a, 0.25, 0, -1), Read(a, 0.25, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.RunN(4); err != nil {
		t.Fatal(err)
	}
	sum, err := b.Reduce(Sum)
	if err != nil {
		t.Fatal(err)
	}
	return sum, prog.Stats()
}

// TestEnginesProduceIdenticalResults runs the same program on both
// backends and requires identical values and statistics.
func TestEnginesProduceIdenticalResults(t *testing.T) {
	simSum, simRep := runJacobiProgram(t, "sim")
	spmdSum, spmdRep := runJacobiProgram(t, "spmd")
	if simSum != spmdSum {
		t.Fatalf("sums differ: sim %g, spmd %g", simSum, spmdSum)
	}
	if simRep != spmdRep {
		t.Fatalf("reports differ:\n sim  %+v\n spmd %+v", simRep, spmdRep)
	}
}

// TestReplicatedRemapSpreadsSenders remaps a partially replicated
// array (ALIGN A(:) WITH D(:,*)) to a direct block mapping on both
// backends: moved counts and statistics must match, and the remap
// traffic must originate from more than one replica holder (the
// per-destination sender choice).
func TestReplicatedRemapSpreadsSenders(t *testing.T) {
	run := func(kind string) (int, Report, int) {
		prog, err := NewProgramEngine("repremap", kind, 8, DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer prog.Close()
		err = prog.Exec(`
			PROCESSORS G(2,4)
			PROCESSORS Q(8)
			REAL D(16,8), A(16), B(16)
			!HPF$ DISTRIBUTE D(BLOCK,BLOCK) TO G
			!HPF$ ALIGN A(:) WITH D(:,*)
			!HPF$ DISTRIBUTE B(CYCLIC) TO Q
		`)
		if err != nil {
			t.Fatal(err)
		}
		a, err := prog.NewArray("A")
		if err != nil {
			t.Fatal(err)
		}
		if !a.Replicated() {
			t.Fatal("A must be replicated across the collapsed grid dimension")
		}
		a.Fill(func(tu Tuple) float64 { return float64(tu[0] * 4) })
		bm, err := prog.MappingOf("B")
		if err != nil {
			t.Fatal(err)
		}
		moved, err := a.RemapTo(bm)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 16; i++ {
			if a.At(TupleOf(i)) != float64(i*4) {
				t.Fatalf("%s: A(%d) changed across remap", kind, i)
			}
		}
		senders := map[int]bool{}
		for _, e := range prog.Machine.TrafficMatrix() {
			senders[e.Src] = true
		}
		return moved, prog.Stats(), len(senders)
	}
	simMoved, simRep, simSenders := run("sim")
	spmdMoved, spmdRep, spmdSenders := run("spmd")
	if simMoved != spmdMoved {
		t.Fatalf("moved: sim %d, spmd %d", simMoved, spmdMoved)
	}
	if simRep != spmdRep {
		t.Fatalf("reports differ:\n sim  %+v\n spmd %+v", simRep, spmdRep)
	}
	if simSenders < 2 || spmdSenders < 2 {
		t.Fatalf("remap traffic must spread over replica holders: sim %d senders, spmd %d", simSenders, spmdSenders)
	}
}

// TestIrregularGatherScatter drives the inspector–executor facade:
// an INDIRECT-distributed source gathered through an indirection
// vector, scatter-add back, and schedule reuse with RunN.
func TestIrregularGatherScatter(t *testing.T) {
	const n, np = 30, 5
	prog := newProg(t, np)
	owner := make([]int, n)
	for i := range owner {
		owner[i] = (i*3)%np + 1
	}
	indir, err := INDIRECT(owner)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := prog.Processors("P", Shape(1, np))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"X", "Y", "Z"} {
		if err := prog.Declare(name, Shape(1, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := prog.Distribute("X", []Format{indir}, tg); err != nil {
		t.Fatal(err)
	}
	if err := prog.Distribute("Y", []Format{BLOCK}, tg); err != nil {
		t.Fatal(err)
	}
	if err := prog.Distribute("Z", []Format{CYCLIC}, tg); err != nil {
		t.Fatal(err)
	}
	x, err := prog.NewArray("X")
	if err != nil {
		t.Fatal(err)
	}
	y, err := prog.NewArray("Y")
	if err != nil {
		t.Fatal(err)
	}
	z, err := prog.NewArray("Z")
	if err != nil {
		t.Fatal(err)
	}
	x.Fill(func(tu Tuple) float64 { return float64(10 * tu[0]) })

	// Gather: Y(i) = X(V(i)) with V(i) = (i*7 mod n) + 1.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (i*7)%n + 1
	}
	if err := y.Gather(x, idx); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if got := y.At(TupleOf(i)); got != float64(10*idx[i-1]) {
			t.Fatalf("Y(%d) = %g, want %g", i, got, float64(10*idx[i-1]))
		}
	}

	// Scatter-add: Z(W(i)) = Σ Y(i) over duplicate targets.
	w := make([]int, n)
	for i := range w {
		w[i] = i/2 + 1 // each target named twice
	}
	if err := z.Scatter(y, w); err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= n/2; j++ {
		want := y.At(TupleOf(2*j-1)) + y.At(TupleOf(2*j))
		if got := z.At(TupleOf(j)); got != want {
			t.Fatalf("Z(%d) = %g, want %g", j, got, want)
		}
	}
	for j := n/2 + 1; j <= n; j++ {
		if got := z.At(TupleOf(j)); got != 0 {
			t.Fatalf("Z(%d) = %g, want untouched 0", j, got)
		}
	}

	// Schedule reuse: replaying a compiled irregular gather leaves
	// values fixed and needs no re-analysis.
	writes := make([]int, n)
	for i := range writes {
		writes[i] = i + 1
	}
	sched, err := y.NewIrregular(x, writes, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.GhostElements() == 0 || sched.Messages() == 0 {
		t.Fatalf("irregular gather should communicate: ghost %d, msgs %d", sched.GhostElements(), sched.Messages())
	}
	if err := sched.RunN(4); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if got := y.At(TupleOf(i)); got != float64(10*idx[i-1]) {
			t.Fatalf("replayed Y(%d) = %g", i, got)
		}
	}

	// Remap invalidates; rebuild works.
	if _, err := x.RemapTo(y.Mapping()); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err == nil || !strings.Contains(err.Error(), "invalidated by remap") {
		t.Fatalf("stale irregular schedule ran: %v", err)
	}
	sched2, err := y.NewIrregular(x, writes, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestIrregularAPIErrors covers the facade validation: rank, index
// bounds, and length mismatches.
func TestIrregularAPIErrors(t *testing.T) {
	prog := newProg(t, 2)
	tg, err := prog.Processors("P", Shape(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Declare("M", Shape(1, 4, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := prog.Declare("V", Shape(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := prog.Distribute("M", []Format{BLOCK, COLON}, tg); err != nil {
		t.Fatal(err)
	}
	if err := prog.Distribute("V", []Format{BLOCK}, tg); err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewArray("M")
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.NewArray("V")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewIrregular(v, []int{1}, []int{1}, nil); err == nil {
		t.Fatal("rank-2 lhs accepted")
	}
	if _, err := v.NewIrregular(v, []int{1, 2}, []int{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := v.NewIrregular(v, []int{9}, []int{1}, nil); err == nil {
		t.Fatal("out-of-domain write accepted")
	}
	if _, err := v.NewIrregular(v, []int{1}, []int{0}, nil); err == nil {
		t.Fatal("out-of-domain read accepted")
	}
	if _, err := v.NewIrregular(v, []int{1}, []int{1}, []float64{1, 2}); err == nil {
		t.Fatal("coefficient length mismatch accepted")
	}
	if err := v.Gather(v, []int{1}); err == nil {
		t.Fatal("short Gather indirection accepted")
	}
	if err := v.Scatter(v, []int{1}); err == nil {
		t.Fatal("short Scatter indirection accepted")
	}
}
