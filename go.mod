module hpfnt

go 1.24
