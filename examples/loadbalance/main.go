// Load balancing with GENERAL_BLOCK (§4.1.2): a triangular workload
// w(i) = i is distributed over 16 processors by BLOCK, CYCLIC, and a
// GENERAL_BLOCK whose bounds are computed by the prefix-sum
// partitioner. GENERAL_BLOCK matches CYCLIC's balance while keeping
// contiguous blocks (only NP-1 boundary rows), which is why the paper
// added it "for the support of load balancing".
package main

import (
	"fmt"
	"log"
	"strings"

	"hpfnt/hpf"
	"hpfnt/internal/dist"
	"hpfnt/internal/partition"
	"hpfnt/internal/workload"
)

func main() {
	const n, np = 4096, 16
	w := workload.TriangularWeights(n)

	g, err := partition.Balance(w, np)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioner-computed GENERAL_BLOCK bounds: %v\n\n", g.Bounds)

	fmt.Printf("%-30s %12s %16s\n", "distribution", "imbalance", "boundary-rows")
	for _, f := range []dist.Format{dist.Block{}, dist.Cyclic{K: 1}, g} {
		imb := partition.FormatImbalance(f, w, np)
		cuts := partition.BoundaryRows(f, n, np)
		label := f.String()
		if len(label) > 30 {
			label = label[:27] + "..."
		}
		fmt.Printf("%-30s %12.3f %16d\n", label, imb, cuts)
	}

	// The same bounds drive a real DISTRIBUTE directive.
	prog, err := hpf.NewProgram("loadbalance", np)
	if err != nil {
		log.Fatal(err)
	}
	prog.SetParamArray("S", g.Bounds)
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS P(%d)
		REAL A(%d)
		!HPF$ DISTRIBUTE A(GENERAL_BLOCK(S)) TO P
	`, np, n))
	if err != nil {
		log.Fatal(err)
	}
	info, err := prog.Inquire("A")
	if err != nil {
		log.Fatal(err)
	}
	render := info.Render()
	if i := strings.Index(render, "formats="); i >= 0 {
		render = render[:i] + "formats=GENERAL_BLOCK(...)"
	}
	fmt.Printf("\nA is now mapped: %s\n", render)
}
