// Procedure boundaries (§7, §8.1.2): REAL A(1000) distributed
// CYCLIC(3), and the strided section A(2:996:2) is passed to SUB(X)
// under each of the paper's dummy distribution modes. Inheritance
// transfers the section's (not format-expressible) mapping at zero
// cost, and the inquiry functions — the paper's answer to passing
// templates across procedure boundaries — describe what arrived.
package main

import (
	"fmt"
	"log"

	"hpfnt/hpf"
	"hpfnt/internal/inquiry"
)

func freshProgram() *hpf.Program {
	prog, err := hpf.NewProgram("main", 8)
	if err != nil {
		log.Fatal(err)
	}
	err = prog.Exec(`
		PROCESSORS P(8)
		REAL A(1000)
		!HPF$ DISTRIBUTE A(CYCLIC(3)) TO P
	`)
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func main() {
	section, err := hpf.Span(2, 996, 2)
	if err != nil {
		log.Fatal(err)
	}
	arg := hpf.Actual{Name: "A", Section: []hpf.Triplet{section}}

	// Mode 2 (inherit, "DISTRIBUTE X *"): zero movement, inquirable.
	prog := freshProgram()
	fr, err := prog.Call("SUB", []hpf.DummySpec{{Name: "X", Mode: hpf.Inherit}}, []hpf.Actual{arg})
	if err != nil {
		log.Fatal(err)
	}
	xm, err := fr.Callee.MappingOf("X")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inherit:      moved-in =", fr.Bindings[0].RemapIn)
	fmt.Println("  inquiry:", inquiry.Describe(xm).Render())
	if err := fr.Return(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  moved-out =", fr.Bindings[0].RemapOut)

	// Mode 1 (explicit, "DISTRIBUTE X (BLOCK)"): remap in, restore out.
	prog = freshProgram()
	tg, err := prog.TargetOf("P")
	if err != nil {
		log.Fatal(err)
	}
	fr, err = prog.Call("SUB", []hpf.DummySpec{{
		Name: "X", Mode: hpf.Explicit, Formats: []hpf.Format{hpf.BLOCK}, Target: tg,
	}}, []hpf.Actual{arg})
	if err != nil {
		log.Fatal(err)
	}
	if err := fr.Return(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("explicit:     moved-in =", fr.Bindings[0].RemapIn, " moved-out =", fr.Bindings[0].RemapOut)

	// Mode 3 (inherit-matching, "DISTRIBUTE X *(CYCLIC(3))"): the
	// section's inherited mapping does not match CYCLIC(3) of the
	// section — the program is not HPF-conforming.
	prog = freshProgram()
	tg, _ = prog.TargetOf("P")
	_, err = prog.Call("SUB", []hpf.DummySpec{{
		Name: "X", Mode: hpf.InheritMatch, Formats: []hpf.Format{hpf.CYCLICK(3)}, Target: tg,
	}}, []hpf.Actual{arg})
	fmt.Println("inherit-match (section): ", err)

	// The same specification matches for the whole array.
	prog = freshProgram()
	tg, _ = prog.TargetOf("P")
	fr, err = prog.Call("SUB", []hpf.DummySpec{{
		Name: "X", Mode: hpf.InheritMatch, Formats: []hpf.Format{hpf.CYCLICK(3)}, Target: tg,
	}}, []hpf.Actual{{Name: "A"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inherit-match (whole A): conforming, moved-in =", fr.Bindings[0].RemapIn)
}
