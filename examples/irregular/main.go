// Irregular, user-defined distributions (intro claim 3 / §9): an
// owner vector — here standing in for the output of a mesh
// partitioner — is used as an INDIRECT distribution format, both
// through the directive language and programmatically. The model's
// machinery (alignment, CONSTRUCT collocation, owner-computes
// execution, reductions) composes with it unchanged, which is exactly
// the generality the paper's definition of distribution functions
// provides for.
package main

import (
	"fmt"
	"log"

	"hpfnt/hpf"
)

func main() {
	const n, np = 64, 4

	// A partitioner-style assignment: interleaved stripes whose
	// widths vary, so some processors own several disjoint pieces.
	owner := make([]int, n)
	p, width, left := 1, 3, 3
	for i := range owner {
		owner[i] = p
		left--
		if left == 0 {
			p = p%np + 1
			width = width%5 + 2
			left = width
		}
	}

	prog, err := hpf.NewProgram("irregular", np)
	if err != nil {
		log.Fatal(err)
	}
	prog.SetParamArray("MAP", owner)
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS P(%d)
		REAL A(%d), B(%d)
		!HPF$ DISTRIBUTE A(INDIRECT(MAP)) TO P
		!HPF$ ALIGN B(I) WITH A(I)
	`, np, n, n))
	if err != nil {
		log.Fatal(err)
	}

	// B follows A's user-defined mapping through CONSTRUCT.
	for _, i := range []int{1, 17, 40, n} {
		ao, err := prog.Unit.Owners("A", hpf.TupleOf(i))
		if err != nil {
			log.Fatal(err)
		}
		bo, _ := prog.Unit.Owners("B", hpf.TupleOf(i))
		fmt.Printf("A(%2d) on processor %d; aligned B(%2d) on %d\n", i, ao[0], i, bo[0])
	}

	// Execute B(i) = A(i-1) + A(i+1): communication now follows the
	// irregular piece boundaries.
	a, err := prog.NewArray("A")
	if err != nil {
		log.Fatal(err)
	}
	b, err := prog.NewArray("B")
	if err != nil {
		log.Fatal(err)
	}
	a.Fill(func(t hpf.Tuple) float64 { return float64(t[0]) })
	if err := b.Assign(hpf.Shape(2, n-1), hpf.Read(a, 1, -1), hpf.Read(a, 1, 1)); err != nil {
		log.Fatal(err)
	}
	sum, err := b.Reduce(hpf.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsweep over the irregular mapping: %s\n", prog.Stats())
	fmt.Printf("global sum of B(2:%d) region = %g\n", n-1, sum)

	// Truly irregular access: gather B(i) = A(V(i)) through an
	// indirection vector — subscripts that are data, the case the
	// inspector–executor subsystem compiles. Build the schedule once,
	// replay it; the replays perform no ownership analysis.
	prog.ResetStats()
	idx := make([]int, n)
	writes := make([]int, n)
	for i := range idx {
		idx[i] = (i*13)%n + 1
		writes[i] = i + 1
	}
	sched, err := b.NewIrregular(a, writes, idx, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.RunN(10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngather B(i) = A(V(i)) ×10 (schedule built once): %s\n", prog.Stats())
	fmt.Printf("halo per iteration: %d elements in %d messages; B(1) = A(%d) = %g\n",
		sched.GhostElements(), sched.Messages(), idx[0], b.At(hpf.TupleOf(1)))
}
