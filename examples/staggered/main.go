// Staggered grid (§8.1.1, the Thole example): the statement
//
//	P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
//
// is executed under three mappings — the doubled HPF template
// distributed (CYCLIC,CYCLIC) (the paper's "worst possible effect"),
// the same template distributed (BLOCK,BLOCK), and the paper's
// template-free direct (BLOCK,BLOCK) with the Vienna BLOCK definition
// — and the induced communication is compared.
package main

import (
	"fmt"
	"log"

	"hpfnt/hpf"
	"hpfnt/internal/machine"
	"hpfnt/internal/workload"
)

const (
	n    = 64
	r, c = 4, 4
)

func templateMapping(format string) workload.StaggeredMappings {
	prog, err := hpf.NewProgram("template", r*c)
	if err != nil {
		log.Fatal(err)
	}
	prog.EnableTemplates()
	prog.SetParam("N", n)
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS G(%d,%d)
		REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
		!HPF$ TEMPLATE T(0:2*N,0:2*N)
		!HPF$ ALIGN P(I,J) WITH T(2*I-1,2*J-1)
		!HPF$ ALIGN U(I,J) WITH T(2*I,2*J-1)
		!HPF$ ALIGN V(I,J) WITH T(2*I-1,2*J)
		!HPF$ DISTRIBUTE T(%s,%s) TO G
	`, r, c, format, format))
	if err != nil {
		log.Fatal(err)
	}
	return mapsOf(prog)
}

func directMapping() workload.StaggeredMappings {
	prog, err := hpf.NewProgram("direct", r*c)
	if err != nil {
		log.Fatal(err)
	}
	prog.UseViennaBlock(true)
	prog.SetParam("N", n)
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS G(%d,%d)
		REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
		!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO G :: U,V,P
	`, r, c))
	if err != nil {
		log.Fatal(err)
	}
	return mapsOf(prog)
}

func mapsOf(prog *hpf.Program) workload.StaggeredMappings {
	u, err := prog.MappingOf("U")
	if err != nil {
		log.Fatal(err)
	}
	v, err := prog.MappingOf("V")
	if err != nil {
		log.Fatal(err)
	}
	p, err := prog.MappingOf("P")
	if err != nil {
		log.Fatal(err)
	}
	return workload.StaggeredMappings{U: u, V: v, P: p}
}

func main() {
	cost := machine.DefaultCost()
	cases := []struct {
		label string
		maps  workload.StaggeredMappings
	}{
		{"template(0:2N,0:2N) (CYCLIC,CYCLIC)", templateMapping("CYCLIC")},
		{"template(0:2N,0:2N) (BLOCK,BLOCK)", templateMapping("BLOCK")},
		{"template-free (BLOCK,BLOCK)", directMapping()},
	}
	var rows []machine.LabelledReport
	for _, cse := range cases {
		rep, err := workload.StaggeredSweep(n, r*c, cse.maps, cost)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, machine.LabelledReport{Label: cse.label, Report: rep})
	}
	fmt.Printf("staggered-grid sweep, N=%d, processors %dx%d\n\n", n, r, c)
	fmt.Print(machine.Table(rows))
	fmt.Println("\nthe (CYCLIC,CYCLIC) template makes every neighbor remote —")
	fmt.Println("the paper's point: the template adds nothing the direct")
	fmt.Println("(BLOCK,BLOCK) distribution doesn't already provide.")
}
