// Allocatable arrays (§6): the paper's example program, verbatim —
// deferred DISTRIBUTE attributes applied at ALLOCATE, an executable
// REALIGN entering B into the forest with a strided alignment to A,
// and an executable REDISTRIBUTE of C. The HPF template model cannot
// express any of this, because templates cannot be ALLOCATABLE
// (§8.2); the template-free model handles it directly.
package main

import (
	"fmt"
	"log"

	"hpfnt/hpf"
)

func main() {
	prog, err := hpf.NewProgram("allocatable", 32)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's "READ 6,M,N" run-time input.
	prog.SetParam("M", 2)
	prog.SetParam("N", 4)

	err = prog.Exec(`
		REAL,ALLOCATABLE(:,:) :: A,B
		REAL,ALLOCATABLE(:) :: C,D
		!HPF$ PROCESSORS PR(32)
		!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
		!HPF$ DISTRIBUTE(BLOCK) :: C,D
		!HPF$ DYNAMIC B,C

		READ 6,M,N
		ALLOCATE(A(N*M,N*M))
		ALLOCATE(B(N,N))
		!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
		ALLOCATE(C(10000), D(10000))
		!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(prog.Unit.Describe())
	for _, name := range []string{"A", "B", "C", "D"} {
		info, err := prog.Inquire(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s %s\n", name, info.Render())
	}

	// B(i,j) is aligned with A(2i, 2j-1): verify collocation.
	bo, err := prog.Unit.Owners("B", hpf.TupleOf(2, 3))
	if err != nil {
		log.Fatal(err)
	}
	ao, err := prog.Unit.Owners("A", hpf.TupleOf(4, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nB(2,3) resides on processor %d; its alignment image A(4,5) on %d\n", bo[0], ao[0])

	// DEALLOCATE removes B from the forest.
	if err := prog.Exec("DEALLOCATE(B)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter DEALLOCATE(B):")
	fmt.Print(prog.Unit.Describe())
}
