// Quickstart: declare two arrays in the paper's directive language,
// distribute them (BLOCK,:) over 8 processors, run a 5-point Jacobi
// sweep under the owner-computes rule, and print the communication
// and load report. With -engine=spmd the abstract processors become
// real concurrent workers exchanging ghost regions over channels; the
// values and the report are identical either way.
package main

import (
	"flag"
	"fmt"
	"log"

	"hpfnt/hpf"
)

func main() {
	engineKind := flag.String("engine", hpf.DefaultEngine(), "execution backend: sim or spmd")
	flag.Parse()
	if err := hpf.SetDefaultEngine(*engineKind); err != nil {
		log.Fatal(err)
	}
	const n, np = 128, 8

	prog, err := hpf.NewProgram("quickstart", np)
	if err != nil {
		log.Fatal(err)
	}
	defer prog.Close()
	prog.SetParam("N", n)

	// The whole mapping is expressed in the paper's own syntax: no
	// templates anywhere.
	err = prog.Exec(`
		PROCESSORS P(8)
		REAL A(1:N,1:N), B(1:N,1:N)
		!HPF$ DISTRIBUTE (BLOCK,:) TO P :: A, B
	`)
	if err != nil {
		log.Fatal(err)
	}

	a, err := prog.NewArray("A")
	if err != nil {
		log.Fatal(err)
	}
	b, err := prog.NewArray("B")
	if err != nil {
		log.Fatal(err)
	}
	a.Fill(func(t hpf.Tuple) float64 { return float64(t[0]+t[1]) / 2 })

	// B(2:N-1,2:N-1) = 0.25*(A(i-1,j)+A(i+1,j)+A(i,j-1)+A(i,j+1)),
	// iterated through a precomputed ghost-region schedule: the
	// communication analysis runs once, the exchange is replayed each
	// sweep.
	interior := hpf.Shape(2, n-1, 2, n-1)
	sched, err := b.NewSchedule(interior,
		hpf.Read(a, 0.25, -1, 0),
		hpf.Read(a, 0.25, 1, 0),
		hpf.Read(a, 0.25, 0, -1),
		hpf.Read(a, 0.25, 0, 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	const sweeps = 5
	for i := 0; i < sweeps; i++ {
		if err := sched.Run(); err != nil {
			log.Fatal(err)
		}
	}

	info, err := prog.Inquire("A")
	if err != nil {
		log.Fatal(err)
	}
	sum, err := b.Reduce(hpf.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping of A:", info.Render())
	fmt.Printf("engine=%s: %d Jacobi sweeps (%d ghost elements each): %s\n",
		prog.EngineKind(), sweeps, sched.GhostElements(), prog.Stats())
	fmt.Printf("B(64,64) = %g, global sum = %g\n", b.At(hpf.TupleOf(64, 64)), sum)
}
