// Recovery: run the heat workload under the elastic driver with a
// scripted mid-job death from the fault-injection wire, and show the
// job surviving it — rollback to the last epoch-aligned checkpoint,
// rejoin at a bumped generation, replay, and land on values and a
// machine.Report identical to a run that never failed. The same
// machinery handles a real kill -9 of a hpfnode worker process (see
// the README's "Surviving kill -9" quickstart); here the fault is
// deterministic, so the output is too.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hpfnt/internal/elastic"
	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
	"hpfnt/internal/transport"
	"hpfnt/internal/workload"
)

func main() {
	n := flag.Int("n", 48, "problem size")
	iters := flag.Int("iters", 12, "epochs to run")
	every := flag.Int("checkpoint-every", 3, "checkpoint interval in epochs")
	dieAt := flag.Int("die-at", 7, "epoch at which the scripted fault kills a worker")
	flag.Parse()
	const np = 8

	// Uninterrupted reference run: what the answer is supposed to be.
	ref, err := func() (workload.NodeResult, error) {
		eng, err := engine.NewOn(engine.SPMD, engine.InprocTransport, np, machine.DefaultCost())
		if err != nil {
			return workload.NodeResult{}, err
		}
		defer eng.Close()
		return workload.RunNode(eng, "heat", *n, *iters)
	}()
	if err != nil {
		log.Fatal(err)
	}

	// The same job under the elastic driver, with a chaos plan that
	// kills rank-owner process 0 abruptly at the scripted epoch. The
	// inproc wire carries no generation, so the wrapper is applied
	// only in the first generation — after the rejoin the fault is
	// gone, exactly like a replaced process.
	dir, err := os.MkdirTemp("", "hpfnt-recovery-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	plan := &transport.ChaosPlan{DieAtEpoch: *dieAt, DieProc: 0}
	var got workload.NodeResult
	cfg := elastic.Config{
		Dial: func(gen int) (transport.Transport, error) { return transport.New(transport.Inproc, np) },
		Wrap: func(tr transport.Transport, gen int) transport.Transport {
			if gen != 0 {
				return tr
			}
			return transport.NewChaos(tr, plan)
		},
		Prepare: func(eng engine.Engine) (elastic.Job, error) {
			job, err := workload.PrepareNode(eng, "heat", *n)
			if err != nil {
				return elastic.Job{}, err
			}
			return elastic.Job{
				Arrays: job.Arrays,
				Step:   job.Step,
				Finish: func() error {
					r, err := job.Finish()
					if err != nil {
						return err
					}
					got = r
					return nil
				},
			}, nil
		},
		Cost:            machine.DefaultCost(),
		Iters:           *iters,
		CheckpointEvery: *every,
		Dir:             dir,
		Retries:         2,
		Logf:            func(format string, args ...any) { fmt.Printf("recovery: "+format+"\n", args...) },
	}
	res, err := elastic.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survived %d member loss(es): %d attempts, final generation %d, restored epoch %d\n",
		res.Recovered, res.Attempts, res.Generation, res.RestoredEpoch)

	if got.Report != ref.Report || got.Sum != ref.Sum {
		log.Fatalf("recovered run diverged: got sum %g report %+v, want sum %g report %+v",
			got.Sum, got.Report, ref.Sum, ref.Report)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			log.Fatalf("value %d diverged after recovery", i)
		}
	}
	fmt.Println("values + report identical to the uninterrupted run")
}
