// Command hpfmap parses a directive-language program (the paper's
// !HPF$ syntax plus a minimal Fortran declaration subset) and reports
// the resulting data mapping: the alignment forest, per-array
// distribution inquiry, per-processor element counts, and optionally
// per-element ownership tables.
//
// Usage:
//
//	hpfmap -np 16 program.hpf
//	hpfmap -np 8 -owners A -param N=64 program.hpf
//	echo 'REAL A(16)' | hpfmap -np 4 -owners A -
//
// Flags:
//
//	-np N        number of abstract processors (default: the
//	             program's !hpfrun: line, else 16)
//	-param K=V   define an integer parameter (repeatable, comma list)
//	-owners A    print the per-element owner table of array A
//	-vienna      use the Vienna Fortran BLOCK definition
//	-templates   enable the HPF baseline TEMPLATE directive
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hpfnt/hpf"
	"hpfnt/internal/inquiry"
	"hpfnt/internal/interp"
)

var (
	np        = flag.Int("np", 0, "number of abstract processors (0: the program's !hpfrun: line, else 16)")
	params    = flag.String("param", "", "comma-separated K=V integer parameters")
	owners    = flag.String("owners", "", "print the owner table of this array")
	vienna    = flag.Bool("vienna", false, "use the Vienna Fortran BLOCK definition")
	templates = flag.Bool("templates", false, "enable the HPF baseline TEMPLATE directive")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpfmap [flags] program.hpf  (use - for stdin)")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *np, *params, *owners, *vienna, *templates); err != nil {
		fmt.Fprintf(os.Stderr, "hpfmap: %v\n", err)
		os.Exit(1)
	}
}

// run loads the program through the shared front-end loader (package
// interp) and writes the mapping report.
func run(w io.Writer, path string, np int, params, owners string, vienna, templates bool) error {
	src, err := interp.ReadSource(path)
	if err != nil {
		return err
	}
	cfg := interp.Config{
		NP:        np,
		Engine:    "sim",
		Vienna:    vienna,
		Templates: templates,
		Params:    map[string]int{},
	}
	if err := interp.ParseParams(params, cfg.Params); err != nil {
		return err
	}
	if err := interp.ScanFileOptions(src, &cfg); err != nil {
		return err
	}
	if cfg.NP == 0 {
		cfg.NP = 16
	}
	prog, err := cfg.NewProgram()
	if err != nil {
		return err
	}
	defer prog.Close()
	// hpfmap reports the mapping only, so executable statements are
	// irrelevant here — but corpus programs contain them. Feed the
	// directive interpreter just the lines it owns.
	if err := prog.Exec(directiveLines(src)); err != nil {
		return err
	}
	return describe(w, prog, cfg.NP, owners)
}

// directiveLines filters a program down to the declaration and
// mapping statements package directive understands, dropping the
// executable statements handled by package interp.
func directiveLines(src string) string {
	var b strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if interp.IsDirectiveLine(line) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// describe writes the mapping report: alignment forest, per-array
// inquiry and per-processor element counts, and the optional owner
// table.
func describe(w io.Writer, prog *hpf.Program, np int, owners string) error {
	fmt.Fprintln(w, prog.Unit.Describe())
	for _, name := range prog.Unit.Names() {
		a, _ := prog.Unit.Array(name)
		if !a.Created {
			continue
		}
		m, err := prog.MappingOf(name)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", name, err)
			continue
		}
		info := inquiry.Describe(m)
		fmt.Fprintf(w, "%-12s %s\n", name, info.Render())
		counts := map[int]int{}
		var cerr error
		m.Domain().ForEach(func(t hpf.Tuple) bool {
			os, err := m.Owners(t)
			if err != nil {
				cerr = err
				return false
			}
			for _, p := range os {
				counts[p]++
			}
			return true
		})
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(w, "%-12s per-processor elements:", "")
		for p := 1; p <= np; p++ {
			if counts[p] > 0 {
				fmt.Fprintf(w, " %d:%d", p, counts[p])
			}
		}
		fmt.Fprintln(w)
	}

	if owners != "" {
		name := strings.ToUpper(owners)
		m, err := prog.MappingOf(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nowner table of %s over %s:\n", name, m.Domain())
		var oerr error
		m.Domain().ForEach(func(t hpf.Tuple) bool {
			os, err := m.Owners(t)
			if err != nil {
				oerr = err
				return false
			}
			fmt.Fprintf(w, "  %s -> %v\n", t, os)
			return true
		})
		if oerr != nil {
			return oerr
		}
	}
	return nil
}
