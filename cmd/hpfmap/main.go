// Command hpfmap parses a directive-language program (the paper's
// !HPF$ syntax plus a minimal Fortran declaration subset) and reports
// the resulting data mapping: the alignment forest, per-array
// distribution inquiry, per-processor element counts, and optionally
// per-element ownership tables.
//
// Usage:
//
//	hpfmap -np 16 program.hpf
//	hpfmap -np 8 -owners A -param N=64 program.hpf
//	echo 'REAL A(16)' | hpfmap -np 4 -owners A -
//
// Flags:
//
//	-np N        number of abstract processors (default 16)
//	-param K=V   define an integer parameter (repeatable, comma list)
//	-owners A    print the per-element owner table of array A
//	-vienna      use the Vienna Fortran BLOCK definition
//	-templates   enable the HPF baseline TEMPLATE directive
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hpfnt/hpf"
	"hpfnt/internal/inquiry"
)

var (
	np        = flag.Int("np", 16, "number of abstract processors")
	params    = flag.String("param", "", "comma-separated K=V integer parameters")
	owners    = flag.String("owners", "", "print the owner table of this array")
	vienna    = flag.Bool("vienna", false, "use the Vienna Fortran BLOCK definition")
	templates = flag.Bool("templates", false, "enable the HPF baseline TEMPLATE directive")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpfmap [flags] program.hpf  (use - for stdin)")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "hpfmap: %v\n", err)
		os.Exit(1)
	}
}

func run(path string) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	prog, err := hpf.NewProgram("main", *np)
	if err != nil {
		return err
	}
	prog.UseViennaBlock(*vienna)
	if *templates {
		prog.EnableTemplates()
	}
	if *params != "" {
		for _, kv := range strings.Split(*params, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -param entry %q", kv)
			}
			v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return fmt.Errorf("bad -param value %q: %w", kv, err)
			}
			prog.SetParam(strings.TrimSpace(parts[0]), v)
		}
	}
	if err := prog.Exec(string(src)); err != nil {
		return err
	}

	fmt.Println(prog.Unit.Describe())
	for _, name := range prog.Unit.Names() {
		a, _ := prog.Unit.Array(name)
		if !a.Created {
			continue
		}
		m, err := prog.MappingOf(name)
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			continue
		}
		info := inquiry.Describe(m)
		fmt.Printf("%-12s %s\n", name, info.Render())
		counts := map[int]int{}
		var cerr error
		m.Domain().ForEach(func(t hpf.Tuple) bool {
			os, err := m.Owners(t)
			if err != nil {
				cerr = err
				return false
			}
			for _, p := range os {
				counts[p]++
			}
			return true
		})
		if cerr != nil {
			return cerr
		}
		fmt.Printf("%-12s per-processor elements:", "")
		for p := 1; p <= *np; p++ {
			if counts[p] > 0 {
				fmt.Printf(" %d:%d", p, counts[p])
			}
		}
		fmt.Println()
	}

	if *owners != "" {
		name := strings.ToUpper(*owners)
		m, err := prog.MappingOf(name)
		if err != nil {
			return err
		}
		fmt.Printf("\nowner table of %s over %s:\n", name, m.Domain())
		var oerr error
		m.Domain().ForEach(func(t hpf.Tuple) bool {
			os, err := m.Owners(t)
			if err != nil {
				oerr = err
				return false
			}
			fmt.Printf("  %s -> %v\n", t, os)
			return true
		})
		if oerr != nil {
			return oerr
		}
	}
	return nil
}
