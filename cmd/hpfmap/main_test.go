package main

import (
	"strings"
	"testing"
)

// TestMapCorpusProgram maps a corpus program end to end and checks
// the owner output: hpfmap must honor the file's embedded !hpfrun:
// options and report every declared array's mapping.
func TestMapCorpusProgram(t *testing.T) {
	var b strings.Builder
	err := run(&b, "../../internal/interp/testdata/programs/jacobi.hpf", 0, "", "", false, false)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"U", "V", "per-processor elements:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	// jacobi pins -np 4 in its !hpfrun: line; BLOCK rows over 32 gives
	// 8 rows x 32 cols = 256 elements on each of the 4 processors.
	if !strings.Contains(out, "1:256 2:256 3:256 4:256") {
		t.Errorf("expected 4-way block counts in output:\n%s", out)
	}
}

// TestMapOwnersTable checks the per-element owner table path on an
// INDIRECT-distributed corpus program.
func TestMapOwnersTable(t *testing.T) {
	var b strings.Builder
	err := run(&b, "../../internal/interp/testdata/programs/gather.hpf", 0, "", "X", false, false)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "owner table of X") {
		t.Fatalf("missing owner table:\n%s", out)
	}
	// OWN = (/1,3,2,4,.../) pins element 1 to processor 1 and element
	// 2 to processor 3.
	if !strings.Contains(out, "(1) -> [1]") || !strings.Contains(out, "(2) -> [3]") {
		t.Errorf("owner table does not reflect the INDIRECT map:\n%s", out)
	}
}

// TestMapExplicitFlagsWin checks that an explicit -np overrides the
// file's !hpfrun: line.
func TestMapExplicitFlagsWin(t *testing.T) {
	var b strings.Builder
	err := run(&b, "../../internal/interp/testdata/programs/align.hpf", 8, "", "", false, false)
	if err != nil {
		t.Fatal(err)
	}
	// The file pins -np 4; the explicit 8 must win (P(4) still fits,
	// BLOCK over the 4-processor arrangement gives 16 elements each).
	if !strings.Contains(b.String(), "1:16 2:16 3:16 4:16") {
		t.Errorf("expected 4-way split of A(1:64) under -np 8:\n%s", b.String())
	}
}
