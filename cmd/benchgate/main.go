// Command benchgate is the CI perf-regression gate: it compares a
// fresh `hpfbench -json` record against the committed snapshot
// (BENCH_6.json) and exits nonzero if the trajectory regressed.
// Usage:
//
//	benchgate -baseline BENCH_6.json -current /tmp/bench.json -tol 1.5
//
// Timed quantities (experiment wall clocks, the spmd replay wall, the
// irregular steady-state wall, per-wire message latency and ghost
// exchange) are gated with a multiplicative tolerance plus a small
// absolute slack, so scheduler noise on sub-millisecond sections
// never trips the gate while a real regression of the committed
// numbers does. Counted quantities are exact: the coalesced frame and
// logical message counts are deterministic, so any drift is a bug,
// not noise. Two structural gates ride along: every experiment
// present in the baseline must still exist and pass, and the shm wire
// must stay at least 5× faster per message than tcp (the tentpole's
// acceptance criterion).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors the fields of cmd/hpfbench's jsonRecord that the
// gate consumes; unknown fields are ignored so the formats can grow.
type record struct {
	Engine      string      `json:"engine"`
	Transport   string      `json:"transport"`
	Repeat      int         `json:"repeat"`
	Experiments []result    `json:"experiments"`
	Speedup     *speedupRec `json:"speedup"`
	Irregular   *irregRec   `json:"irregular"`
	Wires       []wireRec   `json:"wires"`
}

type result struct {
	ID     string  `json:"id"`
	Passed bool    `json:"passed"`
	WallMS float64 `json:"wall_ms"`
}

type speedupRec struct {
	SpmdMS  float64 `json:"spmd_ms"`
	Speedup float64 `json:"speedup"`
}

type irregRec struct {
	SteadyMS     float64 `json:"steady_ms"`
	Amortization float64 `json:"amortization"`
}

type wireRec struct {
	Kind            string  `json:"kind"`
	MsgNS           float64 `json:"msg_ns"`
	GhostIterUS     float64 `json:"ghost_iter_us"`
	CoalescedFrames int64   `json:"coalesced_frames"`
	LogicalMessages int64   `json:"logical_messages"`
}

var (
	baselinePath = flag.String("baseline", "BENCH_6.json", "committed snapshot to gate against")
	currentPath  = flag.String("current", "", "fresh hpfbench -json record (required)")
	tol          = flag.Float64("tol", 1.5, "multiplicative tolerance on timed quantities")
)

// Absolute slacks added on top of the multiplicative tolerance: a
// 20µs experiment may double from cache state alone, and that is not
// a regression worth gating.
const (
	slackWallMS = 5.0   // experiment / replay / steady walls
	slackMsgNS  = 300.0 // per-message latency
	slackIterUS = 150.0 // per-iteration ghost exchange
	shmOverTCP  = 5.0   // required tcp/shm per-message ratio
)

func load(path string) (record, error) {
	var r record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// gate accumulates named pass/fail checks.
type gate struct {
	failed int
}

func (g *gate) check(name string, ok bool, detail string) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
		g.failed++
	}
	fmt.Printf("%s %-52s %s\n", mark, name, detail)
}

// timed gates a timed quantity: current ≤ baseline × tol + slack.
func (g *gate) timed(name string, base, cur, slack float64, unit string) {
	limit := base**tol + slack
	g.check(name, cur <= limit, fmt.Sprintf("baseline %.3f%s, current %.3f%s, limit %.3f%s", base, unit, cur, unit, limit, unit))
}

// exact gates a deterministic count: current must equal baseline.
func (g *gate) exact(name string, base, cur int64) {
	g.check(name, cur == base, fmt.Sprintf("baseline %d, current %d", base, cur))
}

func main() {
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}
	var g gate

	curExp := map[string]result{}
	for _, r := range cur.Experiments {
		curExp[r.ID] = r
	}
	for _, b := range base.Experiments {
		c, ok := curExp[b.ID]
		if !ok {
			g.check(b.ID+" present", false, "experiment missing from current record")
			continue
		}
		g.check(b.ID+" passed", c.Passed, "")
		g.timed(b.ID+" wall", b.WallMS, c.WallMS, slackWallMS, "ms")
	}

	switch {
	case base.Speedup == nil:
		// Baseline has no replay section: nothing to gate.
	case cur.Speedup == nil:
		g.check("speedup present", false, "baseline has a speedup section, current does not")
	default:
		g.timed("speedup spmd wall", base.Speedup.SpmdMS, cur.Speedup.SpmdMS, slackWallMS, "ms")
	}

	switch {
	case base.Irregular == nil:
	case cur.Irregular == nil:
		g.check("irregular present", false, "baseline has an irregular section, current does not")
	default:
		g.timed("irregular steady wall", base.Irregular.SteadyMS, cur.Irregular.SteadyMS, slackWallMS, "ms")
		g.check("irregular amortization",
			cur.Irregular.Amortization >= base.Irregular.Amortization / *tol,
			fmt.Sprintf("baseline %.1fx, current %.1fx, floor %.1fx",
				base.Irregular.Amortization, cur.Irregular.Amortization, base.Irregular.Amortization / *tol))
	}

	curWire := map[string]wireRec{}
	for _, w := range cur.Wires {
		curWire[w.Kind] = w
	}
	for _, b := range base.Wires {
		c, ok := curWire[b.Kind]
		if !ok {
			g.check("wire "+b.Kind+" present", false, "wire missing from current record")
			continue
		}
		g.timed("wire "+b.Kind+" msg latency", b.MsgNS, c.MsgNS, slackMsgNS, "ns")
		g.timed("wire "+b.Kind+" ghost iter", b.GhostIterUS, c.GhostIterUS, slackIterUS, "µs")
		g.exact("wire "+b.Kind+" coalesced frames", b.CoalescedFrames, c.CoalescedFrames)
		g.exact("wire "+b.Kind+" logical messages", b.LogicalMessages, c.LogicalMessages)
	}
	if len(base.Wires) > 0 {
		shm, okS := curWire["shm"]
		tcp, okT := curWire["tcp"]
		if !okS || !okT {
			g.check("shm/tcp ratio", false, "current record lacks shm or tcp wire section")
		} else {
			ratio := tcp.MsgNS / shm.MsgNS
			g.check("shm/tcp ratio", ratio >= shmOverTCP,
				fmt.Sprintf("shm %.1fns vs tcp %.1fns: %.1fx (need ≥%.0fx)", shm.MsgNS, tcp.MsgNS, ratio, shmOverTCP))
		}
	}

	if g.failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d check(s) failed against %s (tol %.2fx)\n", g.failed, *baselinePath, *tol)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all checks passed against %s (tol %.2fx)\n", *baselinePath, *tol)
}
