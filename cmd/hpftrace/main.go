// Command hpftrace analyzes a recorded (possibly merged,
// multi-process) trace file: it reconstructs each epoch's critical
// path from the causal send/recv flow IDs, computes per-worker skew,
// and names the straggler rank.
//
//	hpftrace run.trace            # human report, top 5 critical paths
//	hpftrace -top 3 run.trace     # fewer paths
//	hpftrace -json run.trace      # machine-readable report
//	hpftrace -gate run.trace      # exit 1 unless a critical path and
//	                              # a nonzero skew ratio were found
//
// The input is the Chrome trace-event JSON written by hpfnode -trace
// (or obs.WriteTrace / obs.MergeTraces).
package main

import (
	"flag"
	"fmt"
	"os"

	"hpfnt/internal/obs"
	"hpfnt/internal/obs/analyze"
)

func main() {
	top := flag.Int("top", 5, "print the critical paths of the top N epochs")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	gate := flag.Bool("gate", false, "exit nonzero unless a critical path and a nonzero skew ratio were found")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hpftrace [-top N] [-json] [-gate] trace.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	events, err := obs.ReadTraceEvents(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpftrace:", err)
		os.Exit(1)
	}
	report := analyze.FromEvents(events)
	if *asJSON {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpftrace:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Print(report.Text(*top))
	}
	if *gate {
		if report.MaxCriticalPathNS <= 0 {
			fmt.Fprintln(os.Stderr, "hpftrace: gate failed: no epoch critical path found")
			os.Exit(1)
		}
		if report.MaxSkewRatio <= 0 {
			fmt.Fprintln(os.Stderr, "hpftrace: gate failed: no skew ratio found (no worker spans?)")
			os.Exit(1)
		}
	}
}
