// Command hpfnode is the multi-process SPMD worker daemon: N
// processes join a named job over a real inter-process wire — tcp
// (length-prefixed frames over localhost sockets, handshake carrying
// process rank range and job generation) or shm (lock-free
// shared-memory rings in one mmap'd file) — and execute the same
// deterministic workloads the in-process engine runs: each process
// hosts its block of the abstract processors, array values live only
// on their hosting process, and ghost, remap, reduction and
// irregular-gather traffic crosses the wire. Usage:
//
//	# one command: spawn a 4-process job on localhost and verify it
//	hpfnode -spawn -procs 4 -np 8 -workload all
//
//	# same job over shared-memory rings instead of sockets
//	hpfnode -spawn -procs 4 -np 8 -transport shm -workload all
//
//	# or launch the processes by hand (e.g. one per terminal/container)
//	hpfnode -job demo -addr 127.0.0.1:9137 -procs 2 -self 0 -np 8 -workload jacobi
//	hpfnode -job demo -addr 127.0.0.1:9137 -procs 2 -self 1 -np 8 -workload jacobi
//
// Process 0 (the leader) binds the rendezvous address, re-runs every
// workload on a single-process in-process engine, and exits non-zero
// unless the distributed run produced identical values and an
// identical machine.Report — the acceptance check that the transport
// changes where the program runs, not what it computes.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
	"hpfnt/internal/transport"
	"hpfnt/internal/workload"
)

var (
	job      = flag.String("job", "hpfnt", "job name; all members must agree")
	wire     = flag.String("transport", transport.TCP, "inter-process wire: tcp (localhost sockets) or shm (mmap'd shared-memory rings)")
	addr     = flag.String("addr", "127.0.0.1:0", "tcp leader rendezvous address (host:port); port 0 auto-picks (only useful with -spawn)")
	procs    = flag.Int("procs", 2, "number of OS processes in the job")
	self     = flag.Int("self", 0, "this process's index (0 = leader)")
	np       = flag.Int("np", 8, "abstract processor (worker rank) count, partitioned over the processes")
	wl       = flag.String("workload", "all", "workload to run: jacobi, cg, edgesweep or all")
	size     = flag.Int("n", 64, "problem size")
	iters    = flag.Int("iters", 5, "schedule replay iterations")
	gen      = flag.Int("gen", 1, "job generation; stale-generation workers are refused at the handshake")
	spawn    = flag.Bool("spawn", false, "leader convenience: spawn the other -procs processes of this job on localhost")
	noverify = flag.Bool("noverify", false, "leader: skip the single-process verification run")
	timeout  = flag.Duration("timeout", 30*time.Second, "bootstrap timeout")
)

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()
	var names []string
	if *wl == "all" {
		names = workload.NodeWorkloads()
	} else {
		names = []string{*wl}
	}
	rendezvous := *addr
	var children []*exec.Cmd
	if *spawn {
		if *self != 0 {
			fmt.Fprintln(os.Stderr, "hpfnode: -spawn is only valid on the leader (-self 0)")
			return 1
		}
		// The shm wire rendezvouses on the mmap'd file derived from
		// the job name, not on a socket address.
		if *wire == transport.TCP {
			var err error
			rendezvous, err = resolveAddr(rendezvous)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpfnode: %v\n", err)
				return 1
			}
		}
		var err error
		children, err = spawnPeers(rendezvous)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode: %v\n", err)
			return 1
		}
	}
	code := runMember(rendezvous, names)
	for i, c := range children {
		if err := c.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode: worker process %d: %v\n", i+1, err)
			code = 1
		}
	}
	return code
}

// resolveAddr replaces a ":0" rendezvous port with a concrete free
// one, so the spawned peers can be told where to dial.
func resolveAddr(a string) (string, error) {
	ln, err := net.Listen("tcp", a)
	if err != nil {
		return "", err
	}
	resolved := ln.Addr().String()
	ln.Close()
	return resolved, nil
}

// spawnPeers launches processes 1..procs-1 of this job as children of
// the leader, re-executing this binary.
func spawnPeers(rendezvous string) ([]*exec.Cmd, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, err
	}
	var children []*exec.Cmd
	for i := 1; i < *procs; i++ {
		c := exec.Command(bin,
			"-job", *job, "-transport", *wire, "-addr", rendezvous,
			"-procs", strconv.Itoa(*procs), "-self", strconv.Itoa(i),
			"-np", strconv.Itoa(*np), "-workload", *wl,
			"-n", strconv.Itoa(*size), "-iters", strconv.Itoa(*iters),
			"-gen", strconv.Itoa(*gen), "-timeout", timeout.String())
		c.Stdout = os.Stdout
		c.Stderr = os.Stderr
		if err := c.Start(); err != nil {
			for _, prev := range children {
				prev.Process.Kill()
				prev.Wait()
			}
			return nil, fmt.Errorf("spawning worker process %d: %w", i, err)
		}
		children = append(children, c)
	}
	return children, nil
}

// runMember is one process's life in the job: join the mesh, run the
// workloads in lockstep with the other members, and (on the leader)
// verify against the in-process engine.
func runMember(rendezvous string, names []string) int {
	var tr transport.Transport
	var err error
	switch *wire {
	case transport.TCP:
		tr, err = transport.NewTCP(transport.TCPConfig{
			Job: *job, NP: *np, Procs: *procs, Self: *self,
			Generation: *gen, Addr: rendezvous, Timeout: *timeout,
		})
	case transport.Shm:
		tr, err = transport.NewShm(transport.ShmConfig{
			Job: *job, NP: *np, Procs: *procs, Self: *self,
			Generation: *gen, Timeout: *timeout,
		})
	default:
		err = fmt.Errorf("unknown -transport %q (tcp or shm)", *wire)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfnode[%d]: joining job %q: %v\n", *self, *job, err)
		return 1
	}
	lo, hi := transport.RanksOf(*np, *procs, *self)
	fmt.Printf("hpfnode[%d]: joined job %q gen %d over %s: %d procs, ranks %d..%d of %d\n",
		*self, *job, *gen, *wire, *procs, lo, hi, *np)
	eng, err := engine.NewSPMDOn(tr, machine.DefaultCost())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfnode[%d]: %v\n", *self, err)
		tr.Close()
		return 1
	}
	defer eng.Close()
	code := 0
	for _, name := range names {
		res, err := workload.RunNode(eng, name, *size, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[%d]: %s: %v\n", *self, name, err)
			return 1
		}
		if *self != 0 {
			continue
		}
		fmt.Printf("hpfnode[0]: %-9s n=%d iters=%d: %s\n", name, *size, *iters, res.Report)
		if *noverify {
			continue
		}
		if err := verify(name, res); err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[0]: %s: VERIFY FAILED: %v\n", name, err)
			code = 1
		} else {
			fmt.Printf("hpfnode[0]: %-9s verified on the %s wire against the in-process engine (values + report identical)\n", name, *wire)
		}
	}
	return code
}

// verify re-runs the workload on a single-process in-process spmd
// engine and demands identical values and an identical machine
// report.
func verify(name string, got workload.NodeResult) error {
	ref, err := engine.NewOn(engine.SPMD, engine.InprocTransport, *np, machine.DefaultCost())
	if err != nil {
		return err
	}
	defer ref.Close()
	want, err := workload.RunNode(ref, name, *size, *iters)
	if err != nil {
		return err
	}
	if got.Report != want.Report {
		return fmt.Errorf("report mismatch:\n  job        %+v\n  in-process %+v", got.Report, want.Report)
	}
	if got.Sum != want.Sum {
		return fmt.Errorf("reduction mismatch: job %g, in-process %g", got.Sum, want.Sum)
	}
	if len(got.Data) != len(want.Data) {
		return fmt.Errorf("value vector length mismatch: job %d, in-process %d", len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			return fmt.Errorf("value mismatch at offset %d: job %g, in-process %g", i, got.Data[i], want.Data[i])
		}
	}
	return nil
}
