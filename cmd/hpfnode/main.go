// Command hpfnode is the multi-process SPMD worker daemon: N
// processes join a named job over a real inter-process wire — tcp
// (length-prefixed frames over localhost sockets, handshake carrying
// process rank range and job generation) or shm (lock-free
// shared-memory rings in one mmap'd file) — and execute the same
// deterministic workloads the in-process engine runs: each process
// hosts its block of the abstract processors, array values live only
// on their hosting process, and ghost, remap, reduction and
// irregular-gather traffic crosses the wire. Usage:
//
//	# one command: spawn a 4-process job on localhost and verify it
//	hpfnode -spawn -procs 4 -np 8 -workload all
//
//	# same job over shared-memory rings instead of sockets
//	hpfnode -spawn -procs 4 -np 8 -transport shm -workload all
//
//	# or launch the processes by hand (e.g. one per terminal/container)
//	hpfnode -job demo -addr 127.0.0.1:9137 -procs 2 -self 0 -np 8 -workload jacobi
//	hpfnode -job demo -addr 127.0.0.1:9137 -procs 2 -self 1 -np 8 -workload jacobi
//
// Every member runs under the elastic recovery driver (package
// elastic): with -checkpoint-every set the job checkpoints its
// distributed arrays at epoch boundaries, and a detected member loss
// (crashed process, frozen host, severed wire) rolls the job back to
// the last checkpoint at a bumped generation instead of killing it.
// The fault path can be exercised for real —
//
//	# SIGKILL worker 2 right after the first checkpoint; the
//	# supervisor respawns it, the job recovers and still verifies
//	hpfnode -spawn -procs 4 -np 8 -workload heat -checkpoint-every 2 \
//	        -retries 4 -kill-proc 2 -heartbeat 25ms
//
// — or deterministically in-process with the chaos wire
// (-chaos-die-proc/-chaos-die-epoch), which tears the victim's
// transport down with no goodbye at a scripted epoch so every other
// member discovers the death through its failure detector.
//
// Process 0 (the leader) binds the rendezvous address, re-runs every
// workload on a single-process in-process engine, and exits non-zero
// unless the distributed run produced identical values and an
// identical machine.Report — the acceptance check that the transport
// (and any recovery along the way) changes where the program runs,
// not what it computes.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"hpfnt/internal/ckpt"
	"hpfnt/internal/elastic"
	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/transport"
	"hpfnt/internal/workload"
)

var (
	job      = flag.String("job", "hpfnt", "job name; all members must agree")
	wire     = flag.String("transport", transport.TCP, "inter-process wire: tcp (localhost sockets) or shm (mmap'd shared-memory rings)")
	addr     = flag.String("addr", "127.0.0.1:0", "tcp leader rendezvous address (host:port); port 0 auto-picks (only useful with -spawn)")
	procs    = flag.Int("procs", 2, "number of OS processes in the job")
	self     = flag.Int("self", 0, "this process's index (0 = leader)")
	np       = flag.Int("np", 8, "abstract processor (worker rank) count, partitioned over the processes")
	wl       = flag.String("workload", "all", "workload to run: jacobi, heat, cg, edgesweep or all")
	size     = flag.Int("n", 64, "problem size")
	iters    = flag.Int("iters", 5, "schedule replay iterations (epochs)")
	gen      = flag.Int("gen", 1, "starting job generation; recovery bumps it, stale-generation workers are refused at the handshake")
	spawn    = flag.Bool("spawn", false, "leader convenience: spawn the other -procs processes of this job on localhost")
	noverify = flag.Bool("noverify", false, "leader: skip the single-process verification run")
	timeout  = flag.Duration("timeout", 30*time.Second, "bootstrap timeout, child-reap bound and per-epoch-chunk watchdog")

	ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint the job's arrays every N epochs (0 = no checkpointing; a member loss then replays from epoch 0)")
	ckptDir   = flag.String("checkpoint-dir", "", "job spill directory for checkpoints and the generation file (default: under the system temp dir, derived from -job)")
	retries   = flag.Int("retries", 0, "recovery attempts (generation bumps) before a member loss is fatal")
	hbEvery   = flag.Duration("heartbeat", 0, "failure-detector heartbeat/liveness-stamp interval (0 = transport default, 250ms)")
	failAfter = flag.Duration("fail-after", 0, "silence after which a member is declared lost (0 = transport default, 8x heartbeat)")

	killProc  = flag.Int("kill-proc", -1, "supervisor (-spawn): SIGKILL this worker process mid-job and respawn a replacement")
	killAfter = flag.Duration("kill-after", 0, "supervisor: kill -kill-proc after this delay (0 = right after the first checkpoint is published)")

	chaosDieProc  = flag.Int("chaos-die-proc", -1, "chaos: this process abruptly kills its transport (no goodbye) at -chaos-die-epoch of the starting generation, then rejoins")
	chaosDieEpoch = flag.Int("chaos-die-epoch", 0, "chaos: epoch at which -chaos-die-proc dies (0 = no chaos)")

	httpAddr  = flag.String("http", "", "serve live Prometheus-text /metrics and /debug/pprof on this address (host:port; port 0 auto-picks); spawned workers bind 127.0.0.1:0")
	tracePath = flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in Perfetto): each process writes <path>.p<self>.json, the leader merges them into <path>")
	verbose   = flag.Bool("verbose", false, "enable phase timers and print the leader's per-worker detail table (load, traffic matrix, phase times) instead of the terse report line")
)

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()
	var names []string
	if *wl == "all" {
		names = workload.NodeWorkloads()
	} else {
		names = []string{*wl}
	}
	// Observability: phase timers ride any of the three switches (the
	// verification below compares Logical reports, so measured wall
	// time never perturbs the acceptance check).
	if *verbose || *tracePath != "" || *httpAddr != "" {
		obs.EnableTiming(true)
	}
	if *tracePath != "" {
		traceRec = obs.StartTrace(*self, 1<<14)
	}
	var scrape func() int
	if *httpAddr != "" {
		var err error
		scrape, err = serveMetrics(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode: -http: %v\n", err)
			return 1
		}
	}
	spill := resolveSpill()
	if err := validateRecoveryFlags(names, spill); err != nil {
		fmt.Fprintf(os.Stderr, "hpfnode: %v\n", err)
		return 1
	}
	rendezvous := *addr
	sup := newSupervisor()
	jobDone := make(chan struct{})
	if *spawn {
		if *self != 0 {
			fmt.Fprintln(os.Stderr, "hpfnode: -spawn is only valid on the leader (-self 0)")
			return 1
		}
		// The shm wire rendezvouses on the mmap'd file derived from
		// the job name, not on a socket address.
		if *wire == transport.TCP {
			var err error
			rendezvous, err = resolveAddr(rendezvous)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpfnode: %v\n", err)
				return 1
			}
		}
		if spill != "" {
			cleanSpill(spill, names)
		}
		if err := sup.spawnPeers(rendezvous, spill); err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode: %v\n", err)
			return 1
		}
		if *killProc > 0 {
			go sup.killAndRespawn(rendezvous, spill, *killProc, spillFor(spill, names[0]), jobDone)
		}
	} else if *self == 0 && spill != "" {
		cleanSpill(spill, names)
	}
	code := runMember(rendezvous, spill, names)
	close(jobDone)
	if scrape != nil {
		// Self-scrape while the endpoint is still up: the run fails if
		// its own /metrics does not parse as valid exposition text.
		if c := scrape(); c != 0 && code == 0 {
			code = c
		}
	}
	if code != 0 {
		// Don't leave orphaned workers grinding (or hanging) after the
		// leader has already failed the job.
		sup.killAll()
	}
	if c := sup.waitAll(*timeout); c != 0 && code == 0 {
		code = c
	}
	if c := finishTrace(); c != 0 && code == 0 {
		code = c
	}
	return code
}

// finishTrace writes this process's trace part and, on the leader
// (after every child has been reaped and has written its own part),
// merges the parts into the final trace file. A missing part is
// tolerated: a SIGKILLed member never wrote one.
func finishTrace() int {
	rec := obs.StopTrace()
	if rec == nil {
		return 0
	}
	part := tracePart(*tracePath, *self)
	if err := obs.WriteTrace(part, rec.Snapshot()); err != nil {
		fmt.Fprintf(os.Stderr, "hpfnode[%d]: writing trace part: %v\n", *self, err)
		return 1
	}
	if *self != 0 {
		return 0
	}
	parts := make([]string, *procs)
	for i := range parts {
		parts[i] = tracePart(*tracePath, i)
	}
	n, err := obs.MergeTraces(*tracePath, parts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfnode[0]: merging trace: %v\n", err)
		return 1
	}
	fmt.Printf("hpfnode[0]: wrote %d trace events to %s (open in Perfetto)\n", n, *tracePath)
	return 0
}

// tracePart names process idx's trace part file.
func tracePart(base string, idx int) string {
	return fmt.Sprintf("%s.p%d.json", base, idx)
}

// resolveSpill resolves the job's spill directory: the explicit flag,
// or a temp-dir default when checkpointing or kill/chaos recovery is
// requested, or "" when the run needs no spill state at all.
func resolveSpill() string {
	if *ckptDir != "" {
		return *ckptDir
	}
	if *ckptEvery > 0 || *killProc > 0 || *chaosDieEpoch > 0 {
		return filepath.Join(os.TempDir(), "hpfnt-"+*job+"-spill")
	}
	return ""
}

// spillFor is the per-workload spill subdirectory ("" stays "").
func spillFor(spill, name string) string {
	if spill == "" {
		return ""
	}
	return filepath.Join(spill, name)
}

// cleanSpill removes stale per-workload spill state (checkpoints and
// generation files) from a previous run of the same job name. Leader
// only, before any member joins.
func cleanSpill(spill string, names []string) {
	for _, name := range names {
		os.RemoveAll(spillFor(spill, name))
	}
}

func validateRecoveryFlags(names []string, spill string) error {
	if *killProc >= 0 {
		if !*spawn {
			return fmt.Errorf("-kill-proc needs -spawn (the supervisor does the killing)")
		}
		if *killProc < 1 || *killProc >= *procs {
			return fmt.Errorf("-kill-proc %d is not a worker index in 1..%d (leader loss is not recoverable)", *killProc, *procs-1)
		}
		if len(names) != 1 {
			return fmt.Errorf("-kill-proc needs a single -workload (the respawned replacement must rejoin the same job)")
		}
		if *retries < 1 {
			return fmt.Errorf("-kill-proc needs -retries >= 1 to recover from the loss")
		}
		if *killAfter <= 0 && *ckptEvery <= 0 {
			return fmt.Errorf("-kill-proc with -kill-after 0 waits for a checkpoint: set -checkpoint-every (or an explicit -kill-after)")
		}
		_ = spill // always non-empty here via resolveSpill
	}
	if *chaosDieEpoch > 0 || *chaosDieProc >= 0 {
		if *chaosDieEpoch <= 0 || *chaosDieProc < 0 {
			return fmt.Errorf("-chaos-die-proc and -chaos-die-epoch must be set together")
		}
		if *chaosDieProc < 1 || *chaosDieProc >= *procs {
			return fmt.Errorf("-chaos-die-proc %d is not a worker index in 1..%d (leader loss is not recoverable)", *chaosDieProc, *procs-1)
		}
		if len(names) != 1 {
			return fmt.Errorf("-chaos-die-proc needs a single -workload")
		}
		if *retries < 1 {
			return fmt.Errorf("-chaos-die-proc needs -retries >= 1 to recover from the scripted death")
		}
	}
	return nil
}

// resolveAddr replaces a ":0" rendezvous port with a concrete free
// one, so the spawned peers can be told where to dial.
func resolveAddr(a string) (string, error) {
	ln, err := net.Listen("tcp", a)
	if err != nil {
		return "", err
	}
	resolved := ln.Addr().String()
	ln.Close()
	return resolved, nil
}

// supervisor tracks the leader's spawned worker processes by index,
// so the fault injector can kill and replace one while the job runs.
type supervisor struct {
	mu       sync.Mutex
	children map[int]*exec.Cmd
}

func newSupervisor() *supervisor { return &supervisor{children: map[int]*exec.Cmd{}} }

// childCmd builds the command for worker process idx of this job,
// re-executing this binary with the leader's settings.
func childCmd(rendezvous, spill string, idx int) (*exec.Cmd, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-job", *job, "-transport", *wire, "-addr", rendezvous,
		"-procs", strconv.Itoa(*procs), "-self", strconv.Itoa(idx),
		"-np", strconv.Itoa(*np), "-workload", *wl,
		"-n", strconv.Itoa(*size), "-iters", strconv.Itoa(*iters),
		"-gen", strconv.Itoa(*gen), "-timeout", timeout.String(),
		"-retries", strconv.Itoa(*retries),
		"-checkpoint-every", strconv.Itoa(*ckptEvery),
		"-heartbeat", hbEvery.String(), "-fail-after", failAfter.String(),
	}
	if spill != "" {
		args = append(args, "-checkpoint-dir", spill)
	}
	if *verbose {
		args = append(args, "-verbose")
	}
	if *tracePath != "" {
		// Every member records into the same part-file scheme; the
		// leader merges after reaping the children.
		args = append(args, "-trace", *tracePath)
	}
	if *httpAddr != "" {
		// Workers auto-pick a port: each process is its own scrape
		// target (per-process /metrics, no cross-process collectives).
		args = append(args, "-http", "127.0.0.1:0")
	}
	if *chaosDieEpoch > 0 {
		args = append(args,
			"-chaos-die-proc", strconv.Itoa(*chaosDieProc),
			"-chaos-die-epoch", strconv.Itoa(*chaosDieEpoch))
	}
	c := exec.Command(bin, args...)
	c.Stdout = os.Stdout
	c.Stderr = os.Stderr
	return c, nil
}

// spawnPeers launches processes 1..procs-1 of this job as children of
// the leader.
func (s *supervisor) spawnPeers(rendezvous, spill string) error {
	for i := 1; i < *procs; i++ {
		c, err := childCmd(rendezvous, spill, i)
		if err == nil {
			err = c.Start()
		}
		if err != nil {
			s.killAll()
			s.waitAll(*timeout)
			return fmt.Errorf("spawning worker process %d: %w", i, err)
		}
		s.mu.Lock()
		s.children[i] = c
		s.mu.Unlock()
	}
	return nil
}

// killAndRespawn is the supervisor-level fault injector: once the
// trigger fires (-kill-after elapsed, or the first checkpoint of the
// workload is published), it SIGKILLs worker proc — no shutdown
// handshake, the real thing — and starts a replacement process, which
// learns the current generation from the leader's published file and
// rejoins the recovering job.
func (s *supervisor) killAndRespawn(rendezvous, spill string, proc int, wdir string, done <-chan struct{}) {
	if *killAfter > 0 {
		select {
		case <-time.After(*killAfter):
		case <-done:
			return
		}
	} else {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		deadline := time.After(*timeout)
	wait:
		for {
			select {
			case <-done:
				return
			case <-deadline:
				fmt.Fprintln(os.Stderr, "hpfnode: kill trigger: no checkpoint published before timeout")
				return
			case <-tick.C:
				if _, _, err := ckpt.Latest(wdir); err == nil {
					break wait
				}
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-done: // job finished while we raced for the lock
		return
	default:
	}
	c := s.children[proc]
	if c == nil {
		return
	}
	c.Process.Kill()
	c.Wait()
	fmt.Printf("hpfnode: supervisor sent SIGKILL to worker process %d; respawning a replacement\n", proc)
	nc, err := childCmd(rendezvous, spill, proc)
	if err == nil {
		err = nc.Start()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfnode: respawning worker process %d: %v\n", proc, err)
		delete(s.children, proc)
		return
	}
	s.children[proc] = nc
}

// killAll forcibly terminates every remaining child.
func (s *supervisor) killAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.Process != nil {
			c.Process.Kill()
		}
	}
}

// waitAll reaps every child, bounding each wait by the timeout so a
// wedged worker cannot hang the supervisor: a child that does not
// exit in time is killed and counted as a failure.
func (s *supervisor) waitAll(bound time.Duration) int {
	s.mu.Lock()
	kids := make(map[int]*exec.Cmd, len(s.children))
	for i, c := range s.children {
		kids[i] = c
	}
	s.children = map[int]*exec.Cmd{}
	s.mu.Unlock()
	code := 0
	for i, c := range kids {
		done := make(chan error, 1)
		go func(c *exec.Cmd) { done <- c.Wait() }(c)
		select {
		case err := <-done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpfnode: worker process %d: %v\n", i, err)
				code = 1
			}
		case <-time.After(bound):
			fmt.Fprintf(os.Stderr, "hpfnode: worker process %d did not exit within %v; killing it\n", i, bound)
			c.Process.Kill()
			<-done
			code = 1
		}
	}
	return code
}

// dialWire joins the job's wire at the given generation.
func dialWire(rendezvous string, g int) (transport.Transport, error) {
	switch *wire {
	case transport.TCP:
		return transport.NewTCP(transport.TCPConfig{
			Job: *job, NP: *np, Procs: *procs, Self: *self,
			Generation: g, Addr: rendezvous, Timeout: *timeout,
			Heartbeat: *hbEvery, FailAfter: *failAfter,
		})
	case transport.Shm:
		return transport.NewShm(transport.ShmConfig{
			Job: *job, NP: *np, Procs: *procs, Self: *self,
			Generation: g, Timeout: *timeout,
			Heartbeat: *hbEvery, FailAfter: *failAfter,
		})
	default:
		return nil, fmt.Errorf("unknown -transport %q (tcp or shm)", *wire)
	}
}

// runMember is one process's life in the job: run each workload under
// the elastic recovery driver in lockstep with the other members, and
// (on the leader) verify against the in-process engine.
func runMember(rendezvous, spill string, names []string) int {
	lo, hi := transport.RanksOf(*np, *procs, *self)
	fmt.Printf("hpfnode[%d]: member of job %q over %s: %d procs, ranks %d..%d of %d, starting generation %d\n",
		*self, *job, *wire, *procs, lo, hi, *np, *gen)
	curGen := *gen
	code := 0
	for _, name := range names {
		res, det, eres, err := runWorkload(rendezvous, name, spillFor(spill, name), curGen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[%d]: %s: %v\n", *self, name, err)
			return 1
		}
		// Recovery bumps the generation job-wide; later workloads of
		// this run continue from the settled one.
		curGen = eres.Generation
		if *self != 0 {
			continue
		}
		if eres.Recovered > 0 {
			fmt.Printf("hpfnode[0]: %-9s survived %d member loss(es): %d attempts, final generation %d, restored epoch %d\n",
				name, eres.Recovered, eres.Attempts, eres.Generation, eres.RestoredEpoch)
		}
		if *verbose {
			fmt.Printf("hpfnode[0]: %-9s n=%d iters=%d:\n%s", name, *size, *iters, det)
		} else {
			fmt.Printf("hpfnode[0]: %-9s n=%d iters=%d: %s\n", name, *size, *iters, res.Report)
		}
		if *noverify {
			continue
		}
		if err := verify(name, res); err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[0]: %s: VERIFY FAILED: %v\n", name, err)
			code = 1
		} else {
			fmt.Printf("hpfnode[0]: %-9s verified on the %s wire against the in-process engine (values + report identical)\n", name, *wire)
		}
	}
	return code
}

// runWorkload runs one workload fault-tolerantly and returns its
// result, the leader's job-wide detail (zero unless -verbose) and the
// recovery summary. Each attempt's transport and engine are published
// to the live /metrics state as they come up.
func runWorkload(rendezvous, name, wdir string, startGen int) (workload.NodeResult, machine.Detail, elastic.Result, error) {
	var out workload.NodeResult
	var det machine.Detail
	cfg := elastic.Config{
		Dial: func(g int) (transport.Transport, error) {
			tr, err := dialWire(rendezvous, g)
			if err == nil {
				live.setTransport(tr)
			}
			return tr, err
		},
		Prepare: func(eng engine.Engine) (elastic.Job, error) {
			live.setEngine(eng, wdir)
			job, err := workload.PrepareNode(eng, name, *size)
			if err != nil {
				return elastic.Job{}, err
			}
			return elastic.Job{
				Arrays: job.Arrays,
				Step:   job.Step,
				Finish: func() error {
					r, err := job.Finish()
					if err != nil {
						return err
					}
					out = r
					if *verbose {
						// Collective, like Stats: every member reaches
						// this same point of its Finish.
						det = eng.Detail()
					}
					return nil
				},
			}, nil
		},
		Cost:            machine.DefaultCost(),
		Self:            *self,
		Iters:           *iters,
		CheckpointEvery: *ckptEvery,
		Dir:             wdir,
		Retries:         *retries,
		StartGen:        startGen,
		EpochTimeout:    *timeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hpfnode[%d]: %s: %s\n", *self, name, fmt.Sprintf(format, args...))
		},
	}
	if *chaosDieEpoch > 0 {
		plan := &transport.ChaosPlan{
			Generation: startGen,
			DieAtEpoch: *chaosDieEpoch, DieProc: *chaosDieProc,
		}
		cfg.Wrap = func(tr transport.Transport, g int) transport.Transport {
			return transport.NewChaos(tr, plan)
		}
	}
	eres, err := elastic.Run(cfg)
	return out, det, eres, err
}

// verify re-runs the workload on a single-process in-process spmd
// engine and demands identical values and an identical machine
// report — recovery included: a job that lost and replaced a member
// mid-run must still land on byte-identical state.
func verify(name string, got workload.NodeResult) error {
	ref, err := engine.NewOn(engine.SPMD, engine.InprocTransport, *np, machine.DefaultCost())
	if err != nil {
		return err
	}
	defer ref.Close()
	want, err := workload.RunNode(ref, name, *size, *iters)
	if err != nil {
		return err
	}
	// Logical counters only: with -verbose or -trace the phase timers
	// charge real (irreproducible) wall time into Report.Phase, which
	// must never fail the equivalence check.
	if got.Report.Logical() != want.Report.Logical() {
		return fmt.Errorf("report mismatch:\n  job        %+v\n  in-process %+v",
			got.Report.Logical(), want.Report.Logical())
	}
	if got.Sum != want.Sum {
		return fmt.Errorf("reduction mismatch: job %g, in-process %g", got.Sum, want.Sum)
	}
	if len(got.Data) != len(want.Data) {
		return fmt.Errorf("value vector length mismatch: job %d, in-process %d", len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			return fmt.Errorf("value mismatch at offset %d: job %g, in-process %g", i, got.Data[i], want.Data[i])
		}
	}
	return nil
}
