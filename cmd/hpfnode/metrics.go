package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"

	"hpfnt/internal/ckpt"
	"hpfnt/internal/elastic"
	"hpfnt/internal/engine"
	"hpfnt/internal/interp"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/obs/analyze"
	"hpfnt/internal/transport"
)

// traceRec is the live trace recorder when -trace is on; the skew
// monitor snapshots it at scrape time for the critical-path gauge.
var traceRec *obs.Recorder

// liveJob is what the /metrics endpoint scrapes: the current
// workload's engine, transport and spill directory, swapped in as the
// elastic driver dials and prepares each attempt. Scrape handlers
// read a consistent snapshot under the mutex and then call only
// any-goroutine-safe accessors (engine.LocalDetail, transport.Status,
// WireCounter.Wire, HeartbeatStats.Staleness) — never collectives.
type liveJob struct {
	mu  sync.Mutex
	eng engine.Engine
	tr  transport.Transport
	dir string
}

var live liveJob

func (l *liveJob) setTransport(tr transport.Transport) {
	l.mu.Lock()
	l.tr = tr
	l.mu.Unlock()
}

func (l *liveJob) setEngine(eng engine.Engine, dir string) {
	l.mu.Lock()
	l.eng = eng
	l.dir = dir
	l.mu.Unlock()
}

func (l *liveJob) snapshot() (engine.Engine, transport.Transport, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng, l.tr, l.dir
}

// one wraps a single unlabeled sample.
func one(v float64) []obs.Sample { return []obs.Sample{{Value: v}} }

// serveMetrics builds the process's metric registry, binds addr and
// serves /metrics (Prometheus text exposition) plus /debug/pprof.
// The returned function runs the end-of-job self-scrape — fetch the
// live endpoint over HTTP, validate the exposition text, shut the
// server down — and returns an exit code, so a run with -http is
// itself the CI smoke for the endpoint.
func serveMetrics(addr string) (func() int, error) {
	root := obs.NewRegistry()
	// Every job-level family is registered through a per-job scoped
	// view, so a future multi-tenant daemon can host several jobs'
	// families side by side in one exposition without touching any of
	// the collector closures below.
	reg, err := root.WithLabels("job", *job)
	if err != nil {
		return nil, err
	}
	var regErr error
	add := func(err error) {
		if regErr == nil {
			regErr = err
		}
	}

	detail := func() machine.Detail {
		eng, _, _ := live.snapshot()
		if eng == nil {
			return machine.Detail{}
		}
		return eng.LocalDetail()
	}

	add(reg.Counter("hpfnt_messages_total", "Logical messages charged by the cost model (this process's share).", nil,
		func() []obs.Sample { return one(float64(detail().Report.Messages)) }))
	add(reg.Counter("hpfnt_elements_moved_total", "Array elements moved between workers (this process's share).", nil,
		func() []obs.Sample { return one(float64(detail().Report.ElementsMoved)) }))
	add(reg.Counter("hpfnt_local_refs_total", "Locally satisfied array references.", nil,
		func() []obs.Sample { return one(float64(detail().Report.LocalRefs)) }))
	add(reg.Counter("hpfnt_remote_refs_total", "Array references that crossed worker boundaries.", nil,
		func() []obs.Sample { return one(float64(detail().Report.RemoteRefs)) }))
	add(reg.Counter("hpfnt_wire_frames_total", "Physical frames after schedule-level coalescing (this process's share).", nil,
		func() []obs.Sample { return one(float64(detail().WireFrames)) }))
	add(reg.Gauge("hpfnt_worker_load", "Per-worker compute load (cost-model units).", []string{"rank"},
		func() []obs.Sample {
			d := detail()
			out := make([]obs.Sample, 0, len(d.Load))
			for p := 1; p < len(d.Load); p++ {
				out = append(out, obs.Sample{Labels: []string{strconv.Itoa(p)}, Value: float64(d.Load[p])})
			}
			return out
		}))
	add(reg.Counter("hpfnt_pair_messages_total", "Logical messages per (src,dst) worker pair.", []string{"src", "dst"},
		func() []obs.Sample {
			d := detail()
			out := make([]obs.Sample, 0, len(d.Traffic))
			for _, e := range d.Traffic {
				out = append(out, obs.Sample{
					Labels: []string{strconv.Itoa(e.Src), strconv.Itoa(e.Dst)},
					Value:  float64(e.Messages),
				})
			}
			return out
		}))
	add(reg.Counter("hpfnt_pair_elements_total", "Elements moved per (src,dst) worker pair.", []string{"src", "dst"},
		func() []obs.Sample {
			d := detail()
			out := make([]obs.Sample, 0, len(d.Traffic))
			for _, e := range d.Traffic {
				out = append(out, obs.Sample{
					Labels: []string{strconv.Itoa(e.Src), strconv.Itoa(e.Dst)},
					Value:  float64(e.Elements),
				})
			}
			return out
		}))
	add(reg.Gauge("hpfnt_worker_phase_seconds", "Per-worker wall time by phase (compute, ghost_wait, barrier_wait, reduce, checkpoint).", []string{"rank", "phase"},
		func() []obs.Sample {
			d := detail()
			var out []obs.Sample
			for ph := 0; ph < machine.NumPhases; ph++ {
				vec := d.PhaseNS[ph]
				for p := 1; p < len(vec); p++ {
					if vec[p] == 0 {
						continue
					}
					out = append(out, obs.Sample{
						Labels: []string{strconv.Itoa(p), machine.Phase(ph).String()},
						Value:  float64(vec[p]) / 1e9,
					})
				}
			}
			return out
		}))

	wireStats := func() transport.WireStats {
		_, tr, _ := live.snapshot()
		if wc, ok := tr.(transport.WireCounter); ok {
			return wc.Wire()
		}
		return transport.WireStats{}
	}
	add(reg.Counter("hpfnt_transport_frames_total", "Frames on the physical wire, by direction.", []string{"dir"},
		func() []obs.Sample {
			w := wireStats()
			return []obs.Sample{
				{Labels: []string{"sent"}, Value: float64(w.FramesSent)},
				{Labels: []string{"recv"}, Value: float64(w.FramesRecv)},
			}
		}))
	add(reg.Counter("hpfnt_transport_bytes_total", "Bytes on the physical wire, by direction.", []string{"dir"},
		func() []obs.Sample {
			w := wireStats()
			return []obs.Sample{
				{Labels: []string{"sent"}, Value: float64(w.BytesSent)},
				{Labels: []string{"recv"}, Value: float64(w.BytesRecv)},
			}
		}))
	add(reg.Counter("hpfnt_transport_stalls_total", "Sends that blocked on backpressure (ring/channel full).", nil,
		func() []obs.Sample { return one(float64(wireStats().Stalls)) }))
	add(reg.Gauge("hpfnt_member_alive", "1 while the failure detector believes process is alive.", []string{"proc"},
		func() []obs.Sample {
			_, tr, _ := live.snapshot()
			if tr == nil {
				return nil
			}
			st := tr.Status()
			out := make([]obs.Sample, 0, len(st.Alive))
			for p, up := range st.Alive {
				v := 0.0
				if up {
					v = 1.0
				}
				out = append(out, obs.Sample{Labels: []string{strconv.Itoa(p)}, Value: v})
			}
			return out
		}))
	add(reg.Gauge("hpfnt_heartbeat_staleness_seconds", "Time since the last sign of life from each peer process.", []string{"proc"},
		func() []obs.Sample {
			_, tr, _ := live.snapshot()
			hs, ok := tr.(transport.HeartbeatStats)
			if !ok {
				return nil
			}
			stale := hs.Staleness()
			out := make([]obs.Sample, 0, len(stale))
			for p, d := range stale {
				out = append(out, obs.Sample{Labels: []string{strconv.Itoa(p)}, Value: d.Seconds()})
			}
			return out
		}))
	add(reg.Gauge("hpfnt_generation", "Job generation this process's transport joined at.", nil,
		func() []obs.Sample {
			_, tr, _ := live.snapshot()
			if tr == nil {
				return nil
			}
			return one(float64(tr.Status().Generation))
		}))
	add(reg.Gauge("hpfnt_checkpoint_epoch", "Epoch of the latest published checkpoint (-1 before the first).", nil,
		func() []obs.Sample {
			_, _, dir := live.snapshot()
			if dir == "" {
				return one(-1)
			}
			man, _, err := ckpt.Latest(dir)
			if err != nil {
				return one(-1)
			}
			return one(float64(man.Epoch))
		}))
	add(reg.Counter("hpfnt_recovery_retries_total", "Member-loss recoveries (generation bumps) this process performed.", nil,
		func() []obs.Sample { return one(float64(elastic.Retries())) }))

	// The live skew monitor: every scrape feeds it the current
	// per-worker compute weights (phase nanoseconds when the timers
	// are on, logical load otherwise) and, when tracing, a recorder
	// snapshot for the epoch critical path — the online imbalance
	// signal for counter-driven load balancing.
	mon := obs.NewSkewMonitor()
	skew := func() obs.SkewSample {
		d := detail()
		if d.Report.NP > 0 {
			mon.ObserveWeights(analyze.FromDetail(d).Weights)
		}
		if traceRec != nil {
			mon.ObserveEvents(traceRec.Snapshot())
		}
		return mon.Sample()
	}
	add(reg.Gauge("hpfnt_epoch_skew_ratio", "Per-worker imbalance: max/mean compute weight since the last scrape (1.0 is balanced).", nil,
		func() []obs.Sample { return one(skew().Ratio) }))
	add(reg.Gauge("hpfnt_critical_path_ns", "Length of the latest epoch's critical message/compute chain (0 without -trace).", nil,
		func() []obs.Sample { return one(float64(skew().CriticalPathNS)) }))
	add(reg.Gauge("hpfnt_straggler_rank", "1-based rank of the heaviest worker (0 before the first observation).", nil,
		func() []obs.Sample { return one(float64(skew().Straggler)) }))

	// Process-level families stay on the unscoped root registry.
	add(interp.RegisterMetrics(root))
	if regErr != nil {
		return nil, regErr
	}

	bound, shutdown, err := root.Serve(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("hpfnode[%d]: serving /metrics and /debug/pprof on http://%s/\n", *self, bound)
	return func() int {
		defer shutdown()
		resp, err := http.Get("http://" + bound + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[%d]: self-scrape: %v\n", *self, err)
			return 1
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[%d]: self-scrape: %v\n", *self, err)
			return 1
		}
		n, verr := obs.ValidateExposition(body)
		if verr != nil {
			fmt.Fprintf(os.Stderr, "hpfnode[%d]: /metrics is not valid exposition text: %v\n", *self, verr)
			return 1
		}
		fmt.Printf("hpfnode[%d]: /metrics self-scrape valid: %d samples\n", *self, n)
		return 0
	}, nil
}
