// Command hpfrun executes a directive-language program — the paper's
// !HPF$ mapping directives plus the executable statement subset of
// package interp (array assignments over sections, FORALL, bounded DO
// loops, indirection-vector gathers, PRINT) — on any engine and any
// wire, printing the program's PRINT output and, on request, the
// machine report the mapping induced.
//
// Usage:
//
//	hpfrun examples/quickstart.hpf
//	hpfrun -engine spmd -transport shm -report prog.hpf
//	hpfrun -np 8 -param N=64,ITERS=10 -  (program on stdin)
//
//	# the same program as a real 4-process job over localhost sockets,
//	# leader verifies against the in-process engine:
//	hpfrun -spawn -procs 4 -transport tcp prog.hpf
//
// A program file may pin its own defaults with an options line:
//
//	!hpfrun: -np 6 -param N=48,ITERS=5
//
// Explicit flags win over the file's options.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"hpfnt/hpf"
	"hpfnt/internal/engine"
	"hpfnt/internal/interp"
	"hpfnt/internal/machine"
	"hpfnt/internal/transport"
)

var (
	engineKind = flag.String("engine", "", "execution backend: sim or spmd (default: session default)")
	wire       = flag.String("transport", "", "spmd wire: inproc, shm or tcp (default: session default)")
	np         = flag.Int("np", 0, "abstract processor count (default: the program's !hpfrun: line, else 8)")
	params     = flag.String("param", "", "comma-separated NAME=VALUE integer parameters")
	vienna     = flag.Bool("vienna", false, "use the Vienna Fortran BLOCK definition")
	templates  = flag.Bool("templates", false, "enable the HPF baseline TEMPLATE directive")
	report     = flag.Bool("report", false, "print the logical machine report after the run")
	values     = flag.Bool("values", false, "print per-array element counts and checksums after the run")
	maxStmts   = flag.Int("max-statements", 0, "executed-statement budget (0 = default)")
	maxElems   = flag.Int("max-elems", 0, "per-array element cap (0 = default)")

	spawn    = flag.Bool("spawn", false, "run as a real multi-process job: spawn the other -procs processes on localhost")
	procs    = flag.Int("procs", 2, "number of OS processes in the multi-process job")
	self     = flag.Int("self", 0, "this process's index in the job (0 = leader)")
	job      = flag.String("job", "hpfrun", "job name; all members must agree")
	addr     = flag.String("addr", "127.0.0.1:0", "tcp rendezvous address (port 0 auto-picks; only useful with -spawn)")
	timeout  = flag.Duration("timeout", 30*time.Second, "multi-process bootstrap timeout and child-reap bound")
	noverify = flag.Bool("noverify", false, "leader: skip the in-process verification run")
)

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpfrun [flags] program.hpf  (use - for stdin)")
		return 2
	}
	path := flag.Arg(0)
	src, err := interp.ReadSource(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun: %v\n", err)
		return 1
	}
	cfg := interp.Config{
		Name:      "main",
		NP:        *np,
		Engine:    *engineKind,
		Transport: *wire,
		Vienna:    *vienna,
		Templates: *templates,
		Params:    map[string]int{},
		Limits:    interp.Options{MaxStatements: *maxStmts, MaxElems: *maxElems},
	}
	if err := interp.ParseParams(*params, cfg.Params); err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun: %v\n", err)
		return 1
	}
	if err := interp.ScanFileOptions(src, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun: %v\n", err)
		return 1
	}
	if *spawn || *self != 0 {
		if path == "-" {
			fmt.Fprintln(os.Stderr, "hpfrun: a multi-process job needs a program file, not stdin (every process re-reads it)")
			return 1
		}
		return runJob(path, src, cfg)
	}
	res, err := cfg.Run(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun: %v\n", err)
		return 1
	}
	printResult(res)
	return 0
}

// printResult writes the program's observable output, then the
// optional report and value summaries.
func printResult(res *interp.Result) {
	fmt.Print(res.Output)
	if *values {
		for _, name := range res.SortedNames() {
			sum := 0.0
			for _, v := range res.Values[name] {
				sum += v
			}
			fmt.Printf("array %s n=%d checksum=%.17g\n", name, len(res.Values[name]), sum)
		}
	}
	if *report {
		fmt.Printf("report: %s\n", res.Report.Logical())
	}
}

// runJob executes the program as a real multi-process spmd job over
// the tcp or shm wire: every process interprets the same statement
// stream in lockstep (replicated control), array values live only on
// their hosting process, and all ghost/remap/gather traffic crosses
// the wire. The leader re-runs the program on the in-process engine
// and demands byte-identical output, values and logical report.
func runJob(path, src string, cfg interp.Config) int {
	if *wire != transport.TCP && *wire != transport.Shm {
		fmt.Fprintf(os.Stderr, "hpfrun: a multi-process job needs -transport tcp or shm (got %q)\n", *wire)
		return 1
	}
	if *procs < 2 {
		fmt.Fprintln(os.Stderr, "hpfrun: -procs must be at least 2")
		return 1
	}
	if cfg.NP == 0 {
		cfg.NP = 8
	}
	rendezvous := *addr
	var kids []*exec.Cmd
	if *spawn {
		if *self != 0 {
			fmt.Fprintln(os.Stderr, "hpfrun: -spawn is only valid on the leader (-self 0)")
			return 1
		}
		if *wire == transport.TCP {
			var err error
			if rendezvous, err = resolveAddr(rendezvous); err != nil {
				fmt.Fprintf(os.Stderr, "hpfrun: %v\n", err)
				return 1
			}
		}
		var err error
		if kids, err = spawnPeers(path, rendezvous, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "hpfrun: %v\n", err)
			return 1
		}
	}
	code := runMember(src, rendezvous, cfg)
	if code != 0 {
		for _, c := range kids {
			if c.Process != nil {
				c.Process.Kill()
			}
		}
	}
	for i, c := range kids {
		if err := waitBounded(c, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "hpfrun: worker process %d: %v\n", i+1, err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

// runMember is one process's life in the job: join the wire, build
// the engine and program over it, and interpret the statement stream
// in lockstep with the other members.
func runMember(src, rendezvous string, cfg interp.Config) int {
	tr, err := dialWire(rendezvous, cfg.NP)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun[%d]: %v\n", *self, err)
		return 1
	}
	eng, err := engine.NewSPMDOn(tr, machine.DefaultCost())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun[%d]: %v\n", *self, err)
		return 1
	}
	defer eng.Close()
	prog, err := hpf.NewProgramOn(cfg.Name, eng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun[%d]: %v\n", *self, err)
		return 1
	}
	cfg.Apply(prog)
	res, err := interp.NewWith(prog, cfg.Limits).Run(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun[%d]: %v\n", *self, err)
		return 1
	}
	if *self != 0 {
		return 0
	}
	lo, hi := transport.RanksOf(cfg.NP, *procs, *self)
	fmt.Printf("hpfrun[0]: job %q over %s: %d procs, leader hosts ranks %d..%d of %d\n",
		*job, *wire, *procs, lo, hi, cfg.NP)
	printResult(res)
	if *noverify {
		return 0
	}
	want, err := interp.Config{
		Name: cfg.Name, NP: cfg.NP, Engine: engine.SPMD, Transport: engine.InprocTransport,
		Vienna: cfg.Vienna, Templates: cfg.Templates, Params: cfg.Params,
		ParamArrays: cfg.ParamArrays, Limits: cfg.Limits,
	}.Run(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun[0]: verification run: %v\n", err)
		return 1
	}
	if err := sameResult(want, res); err != nil {
		fmt.Fprintf(os.Stderr, "hpfrun[0]: VERIFY FAILED: %v\n", err)
		return 1
	}
	fmt.Printf("hpfrun[0]: verified on the %s wire against the in-process engine (output, values and report identical)\n", *wire)
	return 0
}

// sameResult enforces the identity contract between the distributed
// run and the in-process reference.
func sameResult(want, got *interp.Result) error {
	if want.Output != got.Output {
		return fmt.Errorf("output mismatch:\n  in-process:\n%s  job:\n%s", want.Output, got.Output)
	}
	if len(want.Names) != len(got.Names) {
		return fmt.Errorf("materialized %v in-process, %v in the job", want.Names, got.Names)
	}
	for _, name := range want.Names {
		wv, gv := want.Values[name], got.Values[name]
		if len(wv) != len(gv) {
			return fmt.Errorf("%s: %d elements in-process, %d in the job", name, len(wv), len(gv))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				return fmt.Errorf("%s[%d]: in-process %g, job %g", name, i, wv[i], gv[i])
			}
		}
	}
	if wl, gl := want.Report.Logical(), got.Report.Logical(); wl != gl {
		return fmt.Errorf("report mismatch:\n  in-process %+v\n  job        %+v", wl, gl)
	}
	return nil
}

// dialWire joins the job's wire.
func dialWire(rendezvous string, np int) (transport.Transport, error) {
	switch *wire {
	case transport.TCP:
		return transport.NewTCP(transport.TCPConfig{
			Job: *job, NP: np, Procs: *procs, Self: *self,
			Generation: 1, Addr: rendezvous, Timeout: *timeout,
		})
	case transport.Shm:
		return transport.NewShm(transport.ShmConfig{
			Job: *job, NP: np, Procs: *procs, Self: *self,
			Generation: 1, Timeout: *timeout,
		})
	default:
		return nil, fmt.Errorf("unknown -transport %q", *wire)
	}
}

// resolveAddr replaces a ":0" rendezvous port with a concrete free
// one, so the spawned peers can be told where to dial.
func resolveAddr(a string) (string, error) {
	ln, err := net.Listen("tcp", a)
	if err != nil {
		return "", err
	}
	resolved := ln.Addr().String()
	ln.Close()
	return resolved, nil
}

// spawnPeers launches processes 1..procs-1 of this job, re-executing
// this binary with the resolved settings.
func spawnPeers(path, rendezvous string, cfg interp.Config) ([]*exec.Cmd, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, err
	}
	var kids []*exec.Cmd
	for i := 1; i < *procs; i++ {
		args := []string{
			"-job", *job, "-transport", *wire, "-addr", rendezvous,
			"-procs", strconv.Itoa(*procs), "-self", strconv.Itoa(i),
			"-np", strconv.Itoa(cfg.NP), "-timeout", timeout.String(),
		}
		if *params != "" {
			args = append(args, "-param", *params)
		}
		if cfg.Vienna {
			args = append(args, "-vienna")
		}
		if cfg.Templates {
			args = append(args, "-templates")
		}
		args = append(args, path)
		c := exec.Command(bin, args...)
		c.Stdout = os.Stdout
		c.Stderr = os.Stderr
		if err := c.Start(); err != nil {
			for _, k := range kids {
				k.Process.Kill()
				k.Wait()
			}
			return nil, fmt.Errorf("spawning worker process %d: %w", i, err)
		}
		kids = append(kids, c)
	}
	return kids, nil
}

// waitBounded reaps a child, killing it if it outlives the bound.
func waitBounded(c *exec.Cmd, bound time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(bound):
		c.Process.Kill()
		<-done
		return fmt.Errorf("did not exit within %v; killed", bound)
	}
}
