// Command hpfbench runs the paper-reproduction experiments E1–E13
// (see README.md for the per-experiment index) and prints, for each,
// the measurement table and the pass/fail verdicts of the paper's
// claims. Usage:
//
//	hpfbench                       # run all experiments
//	hpfbench E2 E4                 # run selected experiments
//	hpfbench -list                 # list experiment ids and titles
//	hpfbench -engine spmd          # run on the parallel SPMD engine
//	hpfbench -transport tcp        # spmd wire: inproc channels or tcp sockets
//	hpfbench -json results.json    # emit per-experiment timings/verdicts
//	hpfbench -speedup              # 512² Jacobi replay: sim vs spmd
//	hpfbench -irregular            # sparse CG + edge sweep: schedule-reuse amortization
//	hpfbench -cpuprofile cpu.out   # write a pprof CPU profile
//	hpfbench -memprofile mem.out   # write a pprof heap profile
//
// The profiles cover the experiment runs only, so hot-path
// regressions in the mapping and schedule kernels can be diagnosed
// with `go tool pprof`. The -json output is a stable per-experiment
// record (id, title, verdicts, wall-clock) so the bench trajectory
// (BENCH_*.json) can be tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/exper"
	"hpfnt/internal/machine"
	"hpfnt/internal/workload"
)

var (
	list       = flag.Bool("list", false, "list experiments without running them")
	engineKind = flag.String("engine", engine.Default, "execution backend: sim (sequential oracle) or spmd (parallel workers)")
	transportK = flag.String("transport", engine.DefaultTransport, "spmd message transport: inproc (buffered channels) or tcp (localhost sockets)")
	jsonOut    = flag.String("json", "", "write a JSON record of per-experiment timings and verdicts to this file (- for stdout)")
	speedup    = flag.Bool("speedup", false, "run the 512² Jacobi schedule-replay speedup comparison (sim vs spmd)")
	irregular  = flag.Bool("irregular", false, "run the irregular workloads (sparse CG gather, mesh edge sweep) and report schedule-reuse amortization")
	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
)

// jsonCheck mirrors exper.Check for the JSON record.
type jsonCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// jsonResult is one experiment's record.
type jsonResult struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Passed bool        `json:"passed"`
	WallMS float64     `json:"wall_ms"`
	Checks []jsonCheck `json:"checks"`
}

// jsonSpeedup records the replay comparison.
type jsonSpeedup struct {
	N       int     `json:"n"`
	NP      int     `json:"np"`
	Iters   int     `json:"iters"`
	SimMS   float64 `json:"sim_ms"`
	SpmdMS  float64 `json:"spmd_ms"`
	Speedup float64 `json:"speedup"`
}

// jsonIrregular records the inspector–executor workloads: the sparse
// CG gather's schedule-reuse amortization (first = inspector + one
// execution, steady = compiled replay) and the mesh edge sweep's
// halo traffic.
type jsonIrregular struct {
	N            int     `json:"n"`
	NNZ          int     `json:"nnz"`
	NP           int     `json:"np"`
	Iters        int     `json:"iters"`
	FirstMS      float64 `json:"first_ms"`
	SteadyMS     float64 `json:"steady_ms"`
	Amortization float64 `json:"amortization"`
	MeshNodes    int     `json:"mesh_nodes"`
	MeshEdges    int     `json:"mesh_edges"`
	MeshMessages int64   `json:"mesh_messages"`
	MeshElements int64   `json:"mesh_elements"`
}

// jsonRecord is the full -json payload.
type jsonRecord struct {
	Engine      string         `json:"engine"`
	Transport   string         `json:"transport"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Experiments []jsonResult   `json:"experiments"`
	Speedup     *jsonSpeedup   `json:"speedup,omitempty"`
	Irregular   *jsonIrregular `json:"irregular,omitempty"`
}

func main() {
	// The profile writers run in deferred calls, so the exit code is
	// decided inside run and applied only after they complete.
	os.Exit(run())
}

func run() int {
	flag.Parse()
	if err := engine.SetDefault(*engineKind); err != nil {
		fmt.Fprintf(os.Stderr, "hpfbench: %v\n", err)
		return 1
	}
	if err := engine.SetDefaultTransport(*transportK); err != nil {
		fmt.Fprintf(os.Stderr, "hpfbench: %v\n", err)
		return 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -memprofile: %v\n", err)
			}
		}()
	}
	if *list {
		for _, e := range exper.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	// Select before running (and before profiling starts mattering):
	// only the named experiments execute, so -cpuprofile/-memprofile
	// cover exactly the chosen hot paths.
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	sel := map[string]bool{}
	for _, e := range exper.Registry() {
		if want[strings.ToUpper(e.ID)] {
			sel[e.ID] = true
		}
	}
	if len(sel) != len(want) {
		fmt.Fprintf(os.Stderr, "hpfbench: unknown experiment id among %v (see -list)\n", flag.Args())
		return 1
	}
	record := jsonRecord{Engine: engine.Default, Transport: engine.DefaultTransport, GoMaxProcs: runtime.GOMAXPROCS(0)}
	failed := 0
	for _, e := range exper.Registry() {
		if len(sel) > 0 && !sel[e.ID] {
			continue
		}
		start := time.Now()
		r, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: %s: %v\n", e.ID, err)
			return 1
		}
		wall := time.Since(start)
		fmt.Println(r.Render())
		if !r.Passed() {
			failed++
		}
		jr := jsonResult{ID: r.ID, Title: r.Title, Passed: r.Passed(), WallMS: float64(wall.Microseconds()) / 1000}
		for _, c := range r.Checks {
			jr.Checks = append(jr.Checks, jsonCheck{Name: c.Name, Pass: c.Pass, Detail: c.Detail})
		}
		record.Experiments = append(record.Experiments, jr)
	}
	if *speedup {
		sp, err := runSpeedup()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -speedup: %v\n", err)
			return 1
		}
		record.Speedup = sp
		fmt.Printf("speedup: 512² Jacobi ×%d on %d workers: sim %.1fms, spmd %.1fms (%.2fx, GOMAXPROCS=%d)\n",
			sp.Iters, sp.NP, sp.SimMS, sp.SpmdMS, sp.Speedup, runtime.GOMAXPROCS(0))
	}
	if *irregular {
		ir, err := runIrregular()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -irregular: %v\n", err)
			return 1
		}
		record.Irregular = ir
		fmt.Printf("irregular: sparse CG %d nnz on %d workers (%s): inspector+execute %.2fms, steady %.3fms/iter (%.1fx amortization)\n",
			ir.NNZ, ir.NP, engine.Default, ir.FirstMS, ir.SteadyMS, ir.Amortization)
		fmt.Printf("irregular: edge sweep %d nodes / %d edges: %d messages, %d halo elements per iteration\n",
			ir.MeshNodes, ir.MeshEdges, ir.MeshMessages, ir.MeshElements)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, record); err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -json: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpfbench: %d experiment(s) had failing checks\n", failed)
		return 1
	}
	return 0
}

// runSpeedup times the 512² row-blocked Jacobi schedule replay on
// both backends.
func runSpeedup() (*jsonSpeedup, error) {
	const n, np, iters = 512, 8, 20
	wall := func(kind string) (time.Duration, error) {
		eng, err := engine.New(kind, np, machine.DefaultCost())
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		am, err := workload.BlockRowMapping(n, np)
		if err != nil {
			return 0, err
		}
		bm, err := workload.BlockRowMapping(n, np)
		if err != nil {
			return 0, err
		}
		if _, err := workload.JacobiReplay(eng, n, 1, am, bm); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := workload.JacobiReplay(eng, n, iters, am, bm); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	simD, err := wall(engine.Sim)
	if err != nil {
		return nil, err
	}
	spmdD, err := wall(engine.SPMD)
	if err != nil {
		return nil, err
	}
	return &jsonSpeedup{
		N: n, NP: np, Iters: iters,
		SimMS:   float64(simD.Microseconds()) / 1000,
		SpmdMS:  float64(spmdD.Microseconds()) / 1000,
		Speedup: float64(simD) / float64(spmdD),
	}, nil
}

// runIrregular runs the inspector–executor workloads on the selected
// engine: the 64k-nonzero sparse CG gather timed for schedule-reuse
// amortization, and the mesh edge sweep for its halo-traffic record.
func runIrregular() (*jsonIrregular, error) {
	const n, nnz, np, iters = 8192, 65536, 8, 50
	sys := workload.SparseMatrix(n, nnz, 23)
	first, steady, err := workload.IrregularAmortization(engine.Default, sys, np, iters)
	if err != nil {
		return nil, err
	}
	const meshN, chords = 4096, 2048
	mesh := workload.RingMesh(meshN, chords, 29)
	eng, err := engine.New(engine.Default, np, machine.DefaultCost())
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	valMap, err := workload.Rank1Mapping(meshN, np, dist.Block{})
	if err != nil {
		return nil, err
	}
	accMap, err := workload.PartitionMapping(meshN, np, 31)
	if err != nil {
		return nil, err
	}
	rep, err := workload.EdgeSweep(eng, mesh, 1, valMap, accMap)
	if err != nil {
		return nil, err
	}
	return &jsonIrregular{
		N: n, NNZ: nnz, NP: np, Iters: iters,
		FirstMS: first, SteadyMS: steady, Amortization: first / steady,
		MeshNodes: meshN, MeshEdges: len(mesh.U),
		MeshMessages: rep.Messages, MeshElements: rep.ElementsMoved,
	}, nil
}

// writeJSON writes the record to path ("-" for stdout).
func writeJSON(path string, record jsonRecord) error {
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
