// Command hpfbench runs the paper-reproduction experiments E1–E13
// (see README.md for the per-experiment index) and prints, for each,
// the measurement table and the pass/fail verdicts of the paper's
// claims. Usage:
//
//	hpfbench                       # run all experiments
//	hpfbench E2 E4                 # run selected experiments
//	hpfbench -list                 # list experiment ids and titles
//	hpfbench -engine spmd          # run on the parallel SPMD engine
//	hpfbench -transport shm        # spmd wire: inproc channels, shm rings or tcp sockets
//	hpfbench -json results.json    # emit per-experiment timings/verdicts
//	hpfbench -repeat 3             # best-of-N timings (stable numbers for regression gating)
//	hpfbench -speedup              # 512² Jacobi replay: sim vs spmd
//	hpfbench -irregular            # sparse CG + edge sweep: schedule-reuse amortization
//	hpfbench -wires                # per-wire micro-benchmarks (latency, ghost exchange, coalescing)
//	hpfbench -cpuprofile cpu.out   # write a pprof CPU profile
//	hpfbench -memprofile mem.out   # write a pprof heap profile
//
// The profiles cover the experiment runs only, so hot-path
// regressions in the mapping and schedule kernels can be diagnosed
// with `go tool pprof`. The -json output is a stable per-experiment
// record (id, title, verdicts, wall-clock) so the bench trajectory
// (BENCH_*.json) can be tracked across PRs; cmd/benchgate compares a
// fresh run against the committed snapshot and fails CI on
// regression (`make bench-gate`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/exper"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/transport"
	"hpfnt/internal/workload"
)

var (
	list       = flag.Bool("list", false, "list experiments without running them")
	engineKind = flag.String("engine", engine.Default, "execution backend: sim (sequential oracle) or spmd (parallel workers)")
	transportK = flag.String("transport", engine.DefaultTransport, "spmd message transport: inproc (buffered channels), shm (shared-memory rings) or tcp (localhost sockets)")
	jsonOut    = flag.String("json", "", "write a JSON record of per-experiment timings and verdicts to this file (- for stdout)")
	repeat     = flag.Int("repeat", 1, "run each timed section N times and record the best (stable numbers for regression gating)")
	speedup    = flag.Bool("speedup", false, "run the 512² Jacobi schedule-replay speedup comparison (sim vs spmd)")
	irregular  = flag.Bool("irregular", false, "run the irregular workloads (sparse CG gather, mesh edge sweep) and report schedule-reuse amortization")
	wires      = flag.Bool("wires", false, "run the per-wire micro-benchmarks (per-message latency, per-iteration ghost exchange, coalesced frames) over every registered transport")
	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the run (epoch/reduce/remap/checkpoint spans; open in Perfetto) and enable phase timers")
)

// jsonCheck mirrors exper.Check for the JSON record.
type jsonCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// jsonResult is one experiment's record.
type jsonResult struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Passed bool        `json:"passed"`
	WallMS float64     `json:"wall_ms"`
	Checks []jsonCheck `json:"checks"`
}

// jsonSpeedup records the replay comparison.
type jsonSpeedup struct {
	N       int     `json:"n"`
	NP      int     `json:"np"`
	Iters   int     `json:"iters"`
	SimMS   float64 `json:"sim_ms"`
	SpmdMS  float64 `json:"spmd_ms"`
	Speedup float64 `json:"speedup"`
}

// jsonIrregular records the inspector–executor workloads: the sparse
// CG gather's schedule-reuse amortization (first = inspector + one
// execution, steady = compiled replay) and the mesh edge sweep's
// halo traffic.
type jsonIrregular struct {
	N            int     `json:"n"`
	NNZ          int     `json:"nnz"`
	NP           int     `json:"np"`
	Iters        int     `json:"iters"`
	FirstMS      float64 `json:"first_ms"`
	SteadyMS     float64 `json:"steady_ms"`
	Amortization float64 `json:"amortization"`
	MeshNodes    int     `json:"mesh_nodes"`
	MeshEdges    int     `json:"mesh_edges"`
	MeshMessages int64   `json:"mesh_messages"`
	MeshElements int64   `json:"mesh_elements"`
}

// jsonWire records one transport's micro-benchmarks: the raw
// per-message latency of a rank-pair stream, the per-iteration wall
// of the in-place (non-coalescible) 256² ghost exchange, and the
// physical-vs-logical traffic of one coalesced multi-iteration epoch
// (frames is exact and deterministic: one per active pair).
type jsonWire struct {
	Kind            string  `json:"kind"`
	MsgNS           float64 `json:"msg_ns"`
	GhostIterUS     float64 `json:"ghost_iter_us"`
	CoalesceIters   int     `json:"coalesce_iters"`
	CoalescedFrames int64   `json:"coalesced_frames"`
	LogicalMessages int64   `json:"logical_messages"`
}

// jsonRecord is the full -json payload.
type jsonRecord struct {
	Engine      string         `json:"engine"`
	Transport   string         `json:"transport"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Repeat      int            `json:"repeat"`
	Experiments []jsonResult   `json:"experiments"`
	Speedup     *jsonSpeedup   `json:"speedup,omitempty"`
	Irregular   *jsonIrregular `json:"irregular,omitempty"`
	Wires       []jsonWire     `json:"wires,omitempty"`
}

// bestOf runs f rep times and returns the smallest duration: timed
// sections record their best-of-N so the committed snapshots (and the
// CI bench gate comparing against them) see scheduler noise, not a
// one-shot outlier.
func bestOf(rep int, f func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < rep; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func main() {
	// The profile writers run in deferred calls, so the exit code is
	// decided inside run and applied only after they complete.
	os.Exit(run())
}

func run() int {
	flag.Parse()
	if err := engine.SetDefault(*engineKind); err != nil {
		fmt.Fprintf(os.Stderr, "hpfbench: %v\n", err)
		return 1
	}
	if err := engine.SetDefaultTransport(*transportK); err != nil {
		fmt.Fprintf(os.Stderr, "hpfbench: %v\n", err)
		return 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		// Timers on, recorder live: every experiment's epoch, reduce,
		// remap and checkpoint spans land in one single-process trace.
		obs.EnableTiming(true)
		obs.StartTrace(0, 1<<16)
		defer func() {
			rec := obs.StopTrace()
			if rec == nil {
				return
			}
			events := rec.Snapshot()
			if err := obs.WriteTrace(*traceOut, events); err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -trace: %v\n", err)
				return
			}
			fmt.Printf("trace: wrote %d events to %s (open in Perfetto)\n", len(events), *traceOut)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -memprofile: %v\n", err)
			}
		}()
	}
	if *list {
		for _, e := range exper.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	// Select before running (and before profiling starts mattering):
	// only the named experiments execute, so -cpuprofile/-memprofile
	// cover exactly the chosen hot paths.
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	sel := map[string]bool{}
	for _, e := range exper.Registry() {
		if want[strings.ToUpper(e.ID)] {
			sel[e.ID] = true
		}
	}
	if len(sel) != len(want) {
		fmt.Fprintf(os.Stderr, "hpfbench: unknown experiment id among %v (see -list)\n", flag.Args())
		return 1
	}
	if *repeat < 1 {
		fmt.Fprintf(os.Stderr, "hpfbench: -repeat must be at least 1, got %d\n", *repeat)
		return 1
	}
	record := jsonRecord{Engine: engine.Default, Transport: engine.DefaultTransport, GoMaxProcs: runtime.GOMAXPROCS(0), Repeat: *repeat}
	failed := 0
	for _, e := range exper.Registry() {
		if len(sel) > 0 && !sel[e.ID] {
			continue
		}
		// Best-of-N: the verdicts are deterministic across repeats
		// (the last result is rendered); only the wall clock varies.
		var r exper.Result
		wall, err := bestOf(*repeat, func() (time.Duration, error) {
			start := time.Now()
			rr, err := e.Run()
			if err != nil {
				return 0, err
			}
			r = rr
			return time.Since(start), nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Println(r.Render())
		if !r.Passed() {
			failed++
		}
		jr := jsonResult{ID: r.ID, Title: r.Title, Passed: r.Passed(), WallMS: float64(wall.Microseconds()) / 1000}
		for _, c := range r.Checks {
			jr.Checks = append(jr.Checks, jsonCheck{Name: c.Name, Pass: c.Pass, Detail: c.Detail})
		}
		record.Experiments = append(record.Experiments, jr)
	}
	if *speedup {
		sp, err := runSpeedup(*repeat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -speedup: %v\n", err)
			return 1
		}
		record.Speedup = sp
		fmt.Printf("speedup: 512² Jacobi ×%d on %d workers: sim %.1fms, spmd %.1fms (%.2fx, GOMAXPROCS=%d)\n",
			sp.Iters, sp.NP, sp.SimMS, sp.SpmdMS, sp.Speedup, runtime.GOMAXPROCS(0))
	}
	if *irregular {
		ir, err := runIrregular(*repeat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -irregular: %v\n", err)
			return 1
		}
		record.Irregular = ir
		fmt.Printf("irregular: sparse CG %d nnz on %d workers (%s): inspector+execute %.2fms, steady %.3fms/iter (%.1fx amortization)\n",
			ir.NNZ, ir.NP, engine.Default, ir.FirstMS, ir.SteadyMS, ir.Amortization)
		fmt.Printf("irregular: edge sweep %d nodes / %d edges: %d messages, %d halo elements per iteration\n",
			ir.MeshNodes, ir.MeshEdges, ir.MeshMessages, ir.MeshElements)
	}
	if *wires {
		ws, err := runWires(*repeat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -wires: %v\n", err)
			return 1
		}
		record.Wires = ws
		for _, w := range ws {
			fmt.Printf("wire %-8s %8.1f ns/msg   ghost in-place %7.1f µs/iter   coalesced ×%d epoch: %d frames / %d logical messages\n",
				w.Kind+":", w.MsgNS, w.GhostIterUS, w.CoalesceIters, w.CoalescedFrames, w.LogicalMessages)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, record); err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -json: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpfbench: %d experiment(s) had failing checks\n", failed)
		return 1
	}
	return 0
}

// runSpeedup times the 512² row-blocked Jacobi schedule replay on
// both backends, best-of-rep per backend.
func runSpeedup(rep int) (*jsonSpeedup, error) {
	const n, np, iters = 512, 8, 20
	wall := func(kind string) (time.Duration, error) {
		eng, err := engine.New(kind, np, machine.DefaultCost())
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		am, err := workload.BlockRowMapping(n, np)
		if err != nil {
			return 0, err
		}
		bm, err := workload.BlockRowMapping(n, np)
		if err != nil {
			return 0, err
		}
		if _, err := workload.JacobiReplay(eng, n, 1, am, bm); err != nil {
			return 0, err
		}
		return bestOf(rep, func() (time.Duration, error) {
			start := time.Now()
			if _, err := workload.JacobiReplay(eng, n, iters, am, bm); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		})
	}
	simD, err := wall(engine.Sim)
	if err != nil {
		return nil, err
	}
	spmdD, err := wall(engine.SPMD)
	if err != nil {
		return nil, err
	}
	return &jsonSpeedup{
		N: n, NP: np, Iters: iters,
		SimMS:   float64(simD.Microseconds()) / 1000,
		SpmdMS:  float64(spmdD.Microseconds()) / 1000,
		Speedup: float64(simD) / float64(spmdD),
	}, nil
}

// runIrregular runs the inspector–executor workloads on the selected
// engine: the 64k-nonzero sparse CG gather timed for schedule-reuse
// amortization (best-of-rep on both the first-iteration and
// steady-state walls), and the mesh edge sweep for its deterministic
// halo-traffic record (counted once).
func runIrregular(rep int) (*jsonIrregular, error) {
	const n, nnz, np, iters = 8192, 65536, 8, 50
	sys := workload.SparseMatrix(n, nnz, 23)
	var first, steady float64
	for i := 0; i < rep; i++ {
		f, s, err := workload.IrregularAmortization(engine.Default, sys, np, iters)
		if err != nil {
			return nil, err
		}
		if i == 0 || f < first {
			first = f
		}
		if i == 0 || s < steady {
			steady = s
		}
	}
	const meshN, chords = 4096, 2048
	mesh := workload.RingMesh(meshN, chords, 29)
	eng, err := engine.New(engine.Default, np, machine.DefaultCost())
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	valMap, err := workload.Rank1Mapping(meshN, np, dist.Block{})
	if err != nil {
		return nil, err
	}
	accMap, err := workload.PartitionMapping(meshN, np, 31)
	if err != nil {
		return nil, err
	}
	mrep, err := workload.EdgeSweep(eng, mesh, 1, valMap, accMap)
	if err != nil {
		return nil, err
	}
	return &jsonIrregular{
		N: n, NNZ: nnz, NP: np, Iters: iters,
		FirstMS: first, SteadyMS: steady, Amortization: first / steady,
		MeshNodes: meshN, MeshEdges: len(mesh.U),
		MeshMessages: mrep.Messages, MeshElements: mrep.ElementsMoved,
	}, nil
}

// runWires runs the per-wire micro-benchmarks over every registered
// transport (best-of-rep on the timed sections). These are the
// numbers behind the tentpole's acceptance gates: shm's per-message
// latency must stay ≥5× below tcp's, and the coalesced frame count is
// exact (one per active pair), both enforced by cmd/benchgate.
func runWires(rep int) ([]jsonWire, error) {
	out := make([]jsonWire, 0, len(transport.Kinds()))
	for _, kind := range transport.Kinds() {
		w, err := wireBench(kind, rep)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// wireBench measures one transport: a 16-element message bounced on a
// single rank-pair stream, the in-place (per-iteration) 256² ghost
// exchange, and the frames-vs-messages count of a coalesced epoch.
func wireBench(kind string, rep int) (jsonWire, error) {
	const (
		msgIters   = 20000
		n, np      = 256, 8
		ghostIters = 50
		coalIters  = 50
	)
	w := jsonWire{Kind: kind, CoalesceIters: coalIters}

	// Raw per-message stream latency.
	msgBest, err := bestOf(rep, func() (time.Duration, error) {
		tr, err := transport.New(kind, 2)
		if err != nil {
			return 0, err
		}
		defer tr.Close()
		msg := make([]float64, 16)
		start := time.Now()
		for i := 0; i < msgIters; i++ {
			tr.Send(1, 2, msg)
			if got := tr.Recv(1, 2); len(got) != len(msg) {
				return 0, fmt.Errorf("message truncated to %d elements", len(got))
			}
		}
		return time.Since(start), nil
	})
	if err != nil {
		return w, err
	}
	w.MsgNS = float64(msgBest.Nanoseconds()) / msgIters

	eng, err := engine.NewOn(engine.SPMD, kind, np, machine.DefaultCost())
	if err != nil {
		return w, err
	}
	defer eng.Close()
	am, err := workload.BlockRowMapping(n, np)
	if err != nil {
		return w, err
	}
	bm, err := workload.BlockRowMapping(n, np)
	if err != nil {
		return w, err
	}
	a, err := eng.NewArray("A", am)
	if err != nil {
		return w, err
	}
	a.Fill(func(t index.Tuple) float64 { return float64((t[0]*t[1])%97) * 1e-4 })
	b, err := eng.NewArray("B", bm)
	if err != nil {
		return w, err
	}
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []engine.Term{
		engine.Read(a, 0.25, -1, 0), engine.Read(a, 0.25, 1, 0),
		engine.Read(a, 0.25, 0, -1), engine.Read(a, 0.25, 0, 1),
	}

	// In-place sweep (A <- A): every iteration ships fresh ghosts, so
	// the per-iteration wall carries the wire's real per-message cost.
	inplace, err := a.NewSchedule(interior, terms)
	if err != nil {
		return w, err
	}
	if err := inplace.Execute(); err != nil {
		return w, err
	}
	ghostBest, err := bestOf(rep, func() (time.Duration, error) {
		start := time.Now()
		if err := inplace.ExecuteN(ghostIters); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return w, err
	}
	w.GhostIterUS = float64(ghostBest.Microseconds()) / ghostIters

	// Coalesced epoch (B <- A): ghost data is epoch-invariant, so the
	// whole multi-iteration epoch ships one frame per active pair while
	// the cost model still charges pairs × iterations logical messages.
	coal, err := b.NewSchedule(interior, terms)
	if err != nil {
		return w, err
	}
	eng.Reset()
	if err := coal.ExecuteN(coalIters); err != nil {
		return w, err
	}
	w.CoalescedFrames = eng.Machine().WireFrames()
	w.LogicalMessages = eng.Stats().Messages
	return w, nil
}

// writeJSON writes the record to path ("-" for stdout).
func writeJSON(path string, record jsonRecord) error {
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
