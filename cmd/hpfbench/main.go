// Command hpfbench runs the paper-reproduction experiments E1–E13
// (see README.md for the per-experiment index) and prints, for each,
// the measurement table and the pass/fail verdicts of the paper's
// claims. Usage:
//
//	hpfbench            # run all experiments
//	hpfbench E2 E4      # run selected experiments
//	hpfbench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hpfnt/internal/exper"
)

var list = flag.Bool("list", false, "list experiments without running them")

func main() {
	flag.Parse()
	results, err := exper.All()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfbench: %v\n", err)
		os.Exit(1)
	}
	if *list {
		for _, r := range results {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	failed := 0
	for _, r := range results {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Println(r.Render())
		if !r.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpfbench: %d experiment(s) had failing checks\n", failed)
		os.Exit(1)
	}
}
