// Command hpfbench runs the paper-reproduction experiments E1–E13
// (see README.md for the per-experiment index) and prints, for each,
// the measurement table and the pass/fail verdicts of the paper's
// claims. Usage:
//
//	hpfbench                       # run all experiments
//	hpfbench E2 E4                 # run selected experiments
//	hpfbench -list                 # list experiment ids and titles
//	hpfbench -cpuprofile cpu.out   # write a pprof CPU profile
//	hpfbench -memprofile mem.out   # write a pprof heap profile
//
// The profiles cover the experiment runs only, so hot-path
// regressions in the mapping and schedule kernels can be diagnosed
// with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hpfnt/internal/exper"
)

var (
	list       = flag.Bool("list", false, "list experiments without running them")
	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
)

func main() {
	// The profile writers run in deferred calls, so the exit code is
	// decided inside run and applied only after they complete.
	os.Exit(run())
}

func run() int {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hpfbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hpfbench: -memprofile: %v\n", err)
			}
		}()
	}
	if *list {
		for _, e := range exper.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	// Select before running (and before profiling starts mattering):
	// only the named experiments execute, so -cpuprofile/-memprofile
	// cover exactly the chosen hot paths.
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	sel := map[string]bool{}
	for _, e := range exper.Registry() {
		if want[strings.ToUpper(e.ID)] {
			sel[e.ID] = true
		}
	}
	if len(sel) != len(want) {
		fmt.Fprintf(os.Stderr, "hpfbench: unknown experiment id among %v (see -list)\n", flag.Args())
		return 1
	}
	results, err := exper.Run(sel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpfbench: %v\n", err)
		return 1
	}
	failed := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if !r.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpfbench: %d experiment(s) had failing checks\n", failed)
		return 1
	}
	return 0
}
