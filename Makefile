GO ?= go

.PHONY: check fmt vet build test race bench fuzz

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

fuzz:
	$(GO) test -run xxx -fuzz FuzzFormatRoundTrip -fuzztime 30s ./internal/dist
