GO ?= go

.PHONY: check fmt vet build test race race-spmd bench speedup fuzz fuzz-engine

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The E1–E13 experiments plus the facade and workload suites on the
# parallel spmd engine, under the race detector.
race-spmd:
	HPFNT_ENGINE=spmd $(GO) test -race -count=1 ./internal/exper ./hpf ./internal/workload

bench:
	$(GO) test -run xxx -bench . -benchmem .

# The 512² Jacobi schedule-replay speedup gate (spmd >= 1.5x sim).
speedup:
	HPFNT_SPEEDUP=1 $(GO) test -run TestSpmdSpeedupJacobi -count=1 -v ./internal/workload

fuzz:
	$(GO) test -run xxx -fuzz FuzzFormatRoundTrip -fuzztime 30s ./internal/dist

# Differential fuzz of the spmd engine against the sequential oracle.
fuzz-engine:
	$(GO) test -run xxx -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/engine
