GO ?= go

.PHONY: check fmt vet build test race race-spmd race-irregular race-tcp race-shm race-recovery node-smoke node-smoke-shm node-recovery node-recovery-shm run-smoke run-smoke-shm obs-smoke obs-recovery-trace trace-analyze-smoke bench bench-snapshot bench-gate speedup amortization overhead corpus fuzz fuzz-engine fuzz-irregular fuzz-interp docs

check: fmt vet build test docs

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The E1–E13 experiments plus the facade and workload suites on the
# parallel spmd engine, under the race detector.
race-spmd:
	HPFNT_ENGINE=spmd $(GO) test -race -count=1 ./internal/exper ./hpf ./internal/workload

# The irregular (inspector–executor) workloads and equivalence tests
# on the spmd engine, under the race detector.
race-irregular:
	HPFNT_ENGINE=spmd $(GO) test -race -count=1 -run 'Irregular|Gather|Scatter' ./internal/workload ./internal/engine ./hpf

# The E1–E13 experiments and the workload/equivalence suites on the
# spmd engine with every message over the tcp transport's loopback
# sockets, under the race detector.
race-tcp:
	HPFNT_ENGINE=spmd HPFNT_TRANSPORT=tcp $(GO) test -race -count=1 ./internal/exper ./hpf ./internal/workload

# The same suites with every spmd message over the shm transport's
# lock-free shared-memory rings, plus the transport package's own
# suite (multi-process mesh, flood, failure paths), under the race
# detector.
race-shm:
	HPFNT_ENGINE=spmd HPFNT_TRANSPORT=shm $(GO) test -race -count=1 ./internal/exper ./hpf ./internal/workload ./internal/transport

# A real 4-process localhost hpfnode job (8 ranks over the tcp
# transport): the leader verifies that every workload produced values
# and a machine.Report identical to the in-process engine.
node-smoke:
	$(GO) run ./cmd/hpfnode -spawn -procs 4 -np 8 -workload all -n 64 -iters 5

# The same 4-process job over the shm wire (one mmap'd file of
# shared-memory rings instead of sockets).
node-smoke-shm:
	$(GO) run ./cmd/hpfnode -spawn -procs 4 -np 8 -transport shm -workload all -n 64 -iters 5

# The fault-tolerance suites — chaos wire, checkpoint store, elastic
# driver (single-process and in-binary multi-member recovery), and the
# transport failure paths — under the race detector.
race-recovery:
	$(GO) test -race -count=1 ./internal/transport ./internal/ckpt ./internal/elastic

# Node-recovery smoke: a real 4-process job in which the supervisor
# SIGKILLs process 2 right after the first checkpoint publishes; the
# survivors detect the loss, everyone rejoins at a bumped generation,
# restores the checkpoint and replays, and the leader verifies values
# and machine.Report identical to the in-process engine.
node-recovery:
	$(GO) run ./cmd/hpfnode -spawn -procs 4 -np 8 -workload heat -n 48 -iters 12 \
		-checkpoint-every 3 -retries 4 -heartbeat 25ms -kill-proc 2

# The same SIGKILL-mid-job recovery over the shm wire (loss detected
# via frozen liveness stamps instead of dead sockets).
node-recovery-shm:
	$(GO) run ./cmd/hpfnode -spawn -procs 4 -np 8 -transport shm -workload heat -n 48 -iters 12 \
		-checkpoint-every 3 -retries 4 -heartbeat 25ms -kill-proc 2

# hpfrun multi-process smoke: the interpreted quickstart program as a
# real 3-process tcp job; the leader re-runs the program on the
# in-process engine and verifies output, values and machine.Report.
run-smoke:
	$(GO) run ./cmd/hpfrun -spawn -procs 3 -transport tcp examples/quickstart.hpf

# The same interpreted job over the shm wire, on the corpus program
# that exercises the INDIRECT gather/scatter path.
run-smoke-shm:
	$(GO) run ./cmd/hpfrun -spawn -procs 2 -transport shm internal/interp/testdata/programs/gather.hpf

# Observability smoke: a 2-process job with the full stack live —
# phase timers, per-process /metrics endpoints (each process
# self-scrapes and validates its own exposition text at exit), the
# per-worker detail table, and a merged Chrome trace.
obs-smoke:
	$(GO) run ./cmd/hpfnode -spawn -procs 2 -np 4 -workload jacobi -n 32 -iters 4 \
		-http 127.0.0.1:0 -trace /tmp/hpfnt-obs-smoke.json -verbose
	$(GO) run ./cmd/hpfnode -spawn -procs 2 -np 4 -transport shm -workload heat -n 32 -iters 4 \
		-http 127.0.0.1:0

# Recovery with the trace recorder on: the merged trace must contain
# the member-lost, rollback and rejoin instants of the SIGKILL story.
obs-recovery-trace:
	$(GO) run ./cmd/hpfnode -spawn -procs 4 -np 8 -workload heat -n 48 -iters 6 \
		-checkpoint-every 2 -retries 4 -heartbeat 25ms -kill-proc 2 \
		-trace /tmp/hpfnt-recovery-trace.json -http 127.0.0.1:0
	@for kind in "member-lost" "rolled back to epoch" "rejoined at generation"; do \
		grep -q "$$kind" /tmp/hpfnt-recovery-trace.json || \
			{ echo "recovery trace is missing a \"$$kind\" event"; exit 1; }; \
	done; echo "recovery trace contains member-lost, rollback and rejoin events"

# Trace-analysis smoke: a 3-process shm job writes per-process trace
# parts with causal flow IDs, the leader merges them, and hpftrace
# must diagnose a nonzero epoch critical path and a nonzero skew
# ratio from the merged trace.
trace-analyze-smoke:
	$(GO) run ./cmd/hpfnode -spawn -procs 3 -np 6 -transport shm -workload jacobi -n 48 -iters 4 \
		-trace /tmp/hpfnt-analyze-trace.json -http 127.0.0.1:0
	$(GO) run ./cmd/hpftrace -json /tmp/hpfnt-analyze-trace.json > /tmp/hpfnt-analyze-report.json
	$(GO) run ./cmd/hpftrace -gate /tmp/hpfnt-analyze-trace.json > /dev/null
	@grep -q '"max_critical_path_ns"' /tmp/hpfnt-analyze-report.json && \
		grep -q '"max_skew_ratio"' /tmp/hpfnt-analyze-report.json || \
		{ echo "hpftrace report is missing analysis fields"; exit 1; }
	@echo "trace analysis found a critical path and a skew diagnosis"

# Every internal package must carry a package-level godoc comment
# (go doc prints "Package <name> ..." on its third line iff one
# exists).
docs:
	@fail=0; for d in ./internal/*/; do \
		if ! $(GO) doc $$d 2>/dev/null | sed -n 3p | grep -q '^Package '; then \
			echo "missing package comment: $$d"; fail=1; fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; echo "all internal packages documented"

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate the committed perf-trajectory snapshot (best-of-3 over
# all experiments, the replay speedup, the irregular workloads and the
# per-wire micro-benchmarks). Commit the result when the numbers move
# for a good reason.
bench-snapshot:
	$(GO) run ./cmd/hpfbench -repeat 3 -speedup -irregular -wires -json BENCH_8.json

# CI perf-regression gate: a fresh best-of-3 record must stay within
# 1.5x of the committed snapshot on every timed section, keep the
# deterministic frame/message counts exactly, and keep shm >=5x
# faster per message than tcp.
bench-gate:
	$(GO) run ./cmd/hpfbench -repeat 3 -speedup -irregular -wires -json /tmp/hpfnt-bench-current.json > /dev/null
	$(GO) run ./cmd/benchgate -baseline BENCH_8.json -current /tmp/hpfnt-bench-current.json -tol 1.5

# The 512² Jacobi schedule-replay speedup gate (spmd >= 1.5x sim).
speedup:
	HPFNT_SPEEDUP=1 $(GO) test -run TestSpmdSpeedupJacobi -count=1 -v ./internal/workload

# The irregular schedule-reuse gate (steady-state >= 5x the inspector
# iteration on the 64k-nonzero sparse CG gather).
amortization:
	HPFNT_SPEEDUP=1 $(GO) test -run TestIrregularAmortization -count=1 -v ./internal/workload

# The observability overhead gate (tracing + phase timers must stay
# within 5% of the uninstrumented 512² Jacobi replay wall).
overhead:
	HPFNT_SPEEDUP=1 $(GO) test -run TestObservabilityOverhead -count=1 -v ./internal/workload

fuzz:
	$(GO) test -run xxx -fuzz FuzzFormatRoundTrip -fuzztime 30s ./internal/dist

# Differential fuzz of the spmd engine against the sequential oracle.
fuzz-engine:
	$(GO) test -run xxx -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/engine

# Differential fuzz of the irregular (inspector–executor) path.
fuzz-irregular:
	$(GO) test -run xxx -fuzz FuzzIrregularEquivalence -fuzztime 30s ./internal/engine

# The golden corpus differential under the race detector: every
# program in internal/interp/testdata/programs must produce
# byte-identical output, values and logical report on {sim,spmd} x
# {inproc,shm,tcp}, plus the interp-vs-handwritten oracle test.
# Regenerate goldens with: go test ./internal/interp -run TestCorpusGolden -update
corpus:
	$(GO) test -race -count=1 -run 'TestCorpus|TestInterp|TestRedistribute' ./internal/interp

# Fuzz the program front end: arbitrary text must never panic or hang
# the interpreter, and generated well-formed programs must be
# identical on the spmd engine and the sequential oracle.
fuzz-interp:
	$(GO) test -run xxx -fuzz FuzzDirectiveProgram -fuzztime 30s ./internal/interp
	$(GO) test -run xxx -fuzz FuzzInterpEquivalence -fuzztime 30s ./internal/interp
